"""SQL chase benchmark: set-based violation sweeps vs the Python evaluator.

ROADMAP item 3.  The chase's hot read is the violation query — on a
nearly-consistent database it enumerates a large LHS join to report few (or
no) violations.  The Python path walks that join tuple-at-a-time through
backtracking index lookups; the SQL path (:mod:`repro.query.sql_chase`) runs
the whole join + anti-join inside SQLite over the
:class:`~repro.storage.mirror.DeltaMirror` shadow and materializes only the
answers.

This benchmark times a full violation sweep (every mapping, whole store) both
ways on a mappings-satisfying store with a sprinkling of injected violations,
asserts the two paths return **identical** answer sets (``semantics_match``),
and — under ``REPRO_BENCH_STRICT=1`` — that the SQL path is at least
``MIN_SWEEP_SPEEDUP`` times faster.  A second measurement pins the reworked
SQLite backend's bulk load (one transaction + ``executemany``) against a
faithful replica of the historical insert-per-row-with-commit loop on a
file-backed database.  Results land under the ``sql_chase`` key of
``BENCH_scaling.json`` (tracked by ``compare_bench.py``).
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import time

from repro.codec.rows import decode_row, encode_row
from repro.query.sql import create_table_statement, quote_identifier
from repro.query.sql_chase import SqlViolationEvaluator
from repro.query.violation_query import ViolationQuery
from repro.storage.memory import MemoryDatabase
from repro.storage.mirror import DeltaMirror
from repro.storage.sqlite_backend import SQLiteDatabase
from repro.workload.experiment import ExperimentConfig, build_environment
from repro.workload.mapping_gen import mapping_prefix

#: Mapping density of the measured sweep (the densest Figure 3 cell).
MAPPING_COUNT = 25

#: Store size (initial tuples requested from the generator) per bench scale.
TUPLE_COUNTS = {"tiny": 500, "small": 1500, "paper": 4000}

#: Timed sweep repetitions per path.
SWEEPS = 3

#: Rows deleted from the satisfying store so the sweep reports something.
INJECTED_VIOLATION_DELETES = 10

#: Required speedups under ``REPRO_BENCH_STRICT=1``.  The acceptance bar is
#: 2x for the sweep at the default scale; the tiny CI smoke run keeps soft
#: bars because sub-10ms timings are noisy.
MIN_SWEEP_SPEEDUP = {"tiny": 1.2, "small": 2.0, "paper": 2.0}
MIN_LOAD_SPEEDUP = {"tiny": 1.0, "small": 1.5, "paper": 1.5}

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scaling.json",
)


def _build_store(scale):
    config = ExperimentConfig.small_scale().scaled(
        num_initial_tuples=TUPLE_COUNTS.get(scale, TUPLE_COUNTS["small"])
    )
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, MAPPING_COUNT)
    database = MemoryDatabase(environment.schema)
    for relation in environment.schema.relation_names():
        for row in environment.initial.tuples(relation):
            database.insert(row)
    rng = random.Random(7)
    all_rows = [
        row
        for relation in environment.schema.relation_names()
        for row in database.tuples(relation)
    ]
    for row in rng.sample(all_rows, min(INJECTED_VIOLATION_DELETES, len(all_rows))):
        database.delete(row)
    return environment, mappings, database


def _sweep_seconds(evaluate, queries, database):
    started = time.perf_counter()
    answers = None
    for _ in range(SWEEPS):
        answers = [evaluate(query, database) for query in queries]
    return time.perf_counter() - started, answers


def _legacy_per_row_load(schema, view, path):
    """Faithful replica of the pre-rework bulk load: per-row existence check,
    per-row INSERT, per-row ``commit()`` on a deferred-transaction connection.
    """
    connection = sqlite3.connect(path)
    connection.execute("PRAGMA synchronous = OFF")
    for relation in schema.relation_names():
        connection.execute(create_table_statement(schema, relation))
    connection.commit()
    started = time.perf_counter()
    for relation in schema.relation_names():
        attributes = schema.relation(relation).attributes
        predicate = " AND ".join(
            "{} = ?".format(quote_identifier(attribute)) for attribute in attributes
        )
        placeholders = ", ".join("?" for _ in attributes)
        probe = "SELECT 1 FROM {} WHERE {} LIMIT 1".format(
            quote_identifier(relation), predicate
        )
        statement = "INSERT INTO {} VALUES ({})".format(
            quote_identifier(relation), placeholders
        )
        for row in view.tuples(relation):
            encoded = encode_row(row)
            if connection.execute(probe, encoded).fetchone() is None:
                connection.execute(statement, encoded)
                connection.commit()
    elapsed = time.perf_counter() - started
    return connection, elapsed


def _bench_bulk_load(schema, view, tmp_path):
    legacy_connection, per_row_seconds = _legacy_per_row_load(
        schema, view, str(tmp_path / "legacy.db")
    )
    batched = SQLiteDatabase(schema, path=str(tmp_path / "batched.db"))
    started = time.perf_counter()
    batched.load_from(view)
    batched_seconds = time.perf_counter() - started
    rows = 0
    contents_match = True
    for relation in schema.relation_names():
        batched_rows = frozenset(batched.tuples(relation))
        legacy_rows = frozenset(
            decode_row(relation, fields)
            for fields in legacy_connection.execute(
                "SELECT * FROM {}".format(quote_identifier(relation))
            )
        )
        rows += len(batched_rows)
        if legacy_rows != batched_rows:
            contents_match = False
    legacy_connection.close()
    batched.close()
    return {
        "rows": rows,
        "per_row_seconds": per_row_seconds,
        "batched_seconds": batched_seconds,
        "speedup": per_row_seconds / max(batched_seconds, 1e-9),
        "contents_match": contents_match,
    }


def test_sql_chase_sweep(tmp_path):
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    strict = os.environ.get("REPRO_BENCH_STRICT") == "1"
    environment, mappings, database = _build_store(scale)
    queries = [ViolationQuery(tgd) for tgd in mappings]

    python_seconds, python_answers = _sweep_seconds(
        lambda query, view: query.evaluate(view), queries, database
    )

    mirror_started = time.perf_counter()
    mirror = DeltaMirror(environment.schema)
    mirror.reset_from(database)
    mirror_seconds = time.perf_counter() - mirror_started
    evaluator = SqlViolationEvaluator(mirror)
    sql_seconds, sql_answers = _sweep_seconds(evaluator.evaluate, queries, database)

    semantics_match = all(
        python_answer == sql_answer
        for python_answer, sql_answer in zip(python_answers, sql_answers)
    )
    assert semantics_match  # identical ViolationRow sets, bindings + witnesses
    assert evaluator.python_fallbacks == 0
    speedup = python_seconds / max(sql_seconds, 1e-9)

    bulk_load = _bench_bulk_load(environment.schema, database, tmp_path)
    assert bulk_load["contents_match"]

    store_rows = sum(
        1
        for relation in environment.schema.relation_names()
        for _ in database.tuples(relation)
    )
    report = {
        "scale": scale,
        "mapping_count": MAPPING_COUNT,
        "store_rows": store_rows,
        "sweeps": SWEEPS,
        "violations_found": sum(len(answer) for answer in python_answers),
        "python_seconds": python_seconds,
        "sql_seconds": sql_seconds,
        "speedup": speedup,
        "mirror_build_seconds": mirror_seconds,
        "statements_rendered": evaluator.statements_rendered,
        "statement_cache_hits": evaluator.statement_cache_hits,
        "semantics_match": semantics_match,
        "bulk_load": bulk_load,
    }
    mirror.close()

    merged = {}
    if os.path.exists(RESULT_PATH):
        try:
            with open(RESULT_PATH) as handle:
                merged = json.load(handle)
        except ValueError:
            merged = {}
    merged["sql_chase"] = report
    with open(RESULT_PATH, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        "\nSQL chase sweep over {} rows, {} mappings: python {:.3f}s vs "
        "sql {:.3f}s ({:.1f}x, mirror build {:.3f}s); bulk load {} rows: "
        "per-row {:.3f}s vs batched {:.3f}s ({:.1f}x)".format(
            store_rows,
            MAPPING_COUNT,
            python_seconds,
            sql_seconds,
            speedup,
            mirror_seconds,
            bulk_load["rows"],
            bulk_load["per_row_seconds"],
            bulk_load["batched_seconds"],
            bulk_load["speedup"],
        )
    )

    if strict:
        assert speedup >= MIN_SWEEP_SPEEDUP.get(scale, 2.0), (
            "set-based SQL sweep must be at least {}x faster than the Python "
            "evaluator (measured {:.1f}x)".format(
                MIN_SWEEP_SPEEDUP.get(scale, 2.0), speedup
            )
        )
        assert bulk_load["speedup"] >= MIN_LOAD_SPEEDUP.get(scale, 1.5), (
            "batched load_from must be at least {}x faster than the per-row "
            "commit loop (measured {:.1f}x)".format(
                MIN_LOAD_SPEEDUP.get(scale, 1.5), bulk_load["speedup"]
            )
        )
