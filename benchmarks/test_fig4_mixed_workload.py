"""Figure 4: the mixed 80% insert / 20% delete workload.

Same three panels as Figure 3, on the workload that also exercises the
backward chase (deletions cascade and produce negative frontiers).
"""

from conftest import print_series, print_slowdown


def _densest(series):
    return {algorithm: points[-1][1] for algorithm, points in series.items() if points}


def test_fig4_aborts(benchmark, figure4_result):
    """Panel (a): total aborts vs. number of mappings (mixed workload)."""
    series = benchmark.pedantic(
        figure4_result.abort_series, rounds=1, iterations=1
    )
    print_series("Figure 4(a) — aborts vs mappings (mixed 80/20)", series)
    top = _densest(series)
    assert top["NAIVE"] >= top["COARSE"]
    assert top["NAIVE"] >= top["PRECISE"]
    assert top["PRECISE"] <= top["COARSE"] * 1.5 + 5
    for points in series.values():
        assert points[0][1] <= points[-1][1]
    if top["NAIVE"] == 0:
        print("  (no conflicts at this benchmark scale; shape assertions are vacuous)")


def test_fig4_cascading_requests(benchmark, figure4_result):
    """Panel (b): cascading abort requests vs. number of mappings (mixed)."""
    series = benchmark.pedantic(
        figure4_result.cascading_request_series, rounds=1, iterations=1
    )
    print_series("Figure 4(b) — cascading abort requests (mixed 80/20)", series)
    top = _densest(series)
    assert top["COARSE"] >= top["PRECISE"]
    assert top["NAIVE"] >= top["PRECISE"]


def test_fig4_precise_slowdown(benchmark, figure4_result):
    """Panel (c): per-update slowdown of PRECISE relative to COARSE (mixed)."""
    wall = benchmark.pedantic(
        figure4_result.precise_slowdown_series, rounds=1, iterations=1
    )
    cost = figure4_result.precise_slowdown_series(use_cost_model=True)
    print_slowdown("Figure 4(c) — slowdown of PRECISE vs COARSE (wall clock)", wall)
    print_slowdown("Figure 4(c) — slowdown of PRECISE vs COARSE (cost model)", cost)
    assert wall
    densest = figure4_result.cell(wall[-1][0], "COARSE")
    if densest.aborts > 0 or densest.cascading_abort_requests > 0:
        assert wall[-1][1] > 1.0
        assert cost[-1][1] > 1.0
