"""Drain-protocol latency bench: watermark quiescence vs the paced barrier.

Measures what a ``drain()`` call actually costs once the federation has
nothing left to do — the settle-detection tail every closed-loop driver,
checkpoint and test teardown pays.  For each peer count the same generated
scenario is submitted and settled once, then the *idle* federation is
drained repeatedly under both protocols:

* ``poll`` — the original barrier: 10 ms-paced status rounds until two
  consecutive rounds return identical counter fingerprints (at minimum two
  full rounds plus two paces, regardless of how idle the peers are);
* ``watermark`` — conservation-based: peers pushed a went-idle status
  delta when they settled, so the coordinator already holds a quiescent,
  link-conserved view of every peer and needs exactly one confirming
  status round.

The median over several repeats goes into the ``drain_protocol`` entry of
``BENCH_scaling.json`` per peer count, with the top-level ``drain_speedup``
taken at the largest peer count measured.  The first (workload) drain per
peer count is recorded too — wall seconds, rounds and the watermark
protocol's ``time_to_idle_seconds`` decomposition — and every drained
state is checked against the single-repository reference chase, so the
faster protocol is proven to settle the *same* state, not a looser one.

A second measurement exercises the adaptive envelope staging window: the
same workload re-run with ``stage_rounds=3``/25 ms staging, recording the
committed/s throughput and the wire framing density under batching
(``staging_window`` sub-entry; ``compare_bench`` tracks its throughput).

Scales with ``REPRO_BENCH_SCALE`` (tiny/small/paper);
``REPRO_BENCH_STRICT=1`` arms the recorded policy as an assertion: at the
``small`` scale the watermark drain must be at least 2x faster than the
poll drain at 8 peers.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.core.oracle import AlwaysExpandOracle
from repro.federation import (
    ProcessFederation,
    databases_equivalent,
    reference_chase,
)
from repro.workload.federated_loop import expanding_answer
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)

#: Peer counts measured per scale; the speedup headline uses the largest.
PEER_COUNTS = {
    "tiny": [4],
    "small": [4, 8],
    "paper": [4, 8, 16],
}

#: Idle drains measured per protocol (median reported).
REPEATS = {"tiny": 3, "small": 5, "paper": 7}

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scaling.json",
)


def _merge_entry(key, entry):
    """Merge one entry into the trajectory file, preserving other keys."""
    recorded = {}
    if os.path.exists(RESULT_PATH):
        try:
            with open(RESULT_PATH) as handle:
                recorded = json.load(handle)
        except ValueError:
            recorded = {}
    recorded[key] = entry
    with open(RESULT_PATH, "w") as handle:
        json.dump(recorded, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _scenario(num_peers):
    # Compute-light on purpose: this bench measures the settle-detection
    # tail, not chase throughput, so the workload only has to generate real
    # cross-peer traffic before going quiet.
    return FederationScenarioConfig(
        num_peers=num_peers,
        cross_mappings=num_peers + 2,
        operations_per_peer=3,
        initial_tuples=40,
        seed=num_peers,
    )


def _submit_all(federation, environment):
    tickets = []
    for peer in sorted(environment.operations):
        for operation in environment.operations[peer]:
            tickets.append(federation.submit(peer, operation))
    return tickets


def _reference_final(environment):
    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    assert reference.all_terminated
    return reference.final


def _timed_idle_drains(federation, mode, repeats):
    """Median wall seconds and rounds of *repeats* drains on an idle fleet."""
    walls, rounds = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        rounds.append(federation.drain(timeout=60.0, mode=mode))
        walls.append(time.perf_counter() - started)
        assert federation.last_drain["mode"] == mode
    return statistics.median(walls), statistics.median(rounds)


def _measure_peer_count(workdir, num_peers, repeats):
    config = _scenario(num_peers)
    environment = generate_federation_environment(config)
    federation = ProcessFederation(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        workdir=str(workdir),
    )
    try:
        # Settle the workload once (watermark mode: its time-to-idle field
        # decomposes how much of the wall was workload vs confirmation).
        settle_started = time.perf_counter()
        tickets = _submit_all(federation, environment)
        settle_rounds = federation.drain(
            answer_strategy=expanding_answer, timeout=600.0, mode="watermark"
        )
        settle_wall = time.perf_counter() - settle_started
        assert all(ticket.is_done for ticket in tickets)
        settle_record = dict(federation.last_drain)

        # The protocol comparison proper: repeated drains of the now-idle
        # federation, watermark first (its views are warm either way — the
        # peers pushed their went-idle deltas during the settle).
        watermark_wall, watermark_rounds = _timed_idle_drains(
            federation, "watermark", repeats
        )
        poll_wall, poll_rounds = _timed_idle_drains(federation, "poll", repeats)
        snapshot = federation.global_snapshot()
    finally:
        federation.close()
        federation.assert_reaped()
    assert databases_equivalent(snapshot, _reference_final(environment)), (
        "drained state diverged from the reference chase at {} peers".format(
            num_peers
        )
    )
    return {
        "peers": num_peers,
        "user_operations": len(tickets),
        "settle_wall_seconds": settle_wall,
        "settle_rounds": settle_rounds,
        "time_to_idle_seconds": settle_record.get("time_to_idle_seconds"),
        "idle_drain_repeats": repeats,
        "watermark_seconds": watermark_wall,
        "watermark_rounds": watermark_rounds,
        "poll_seconds": poll_wall,
        "poll_rounds": poll_rounds,
        "drain_speedup": poll_wall / max(watermark_wall, 1e-9),
    }


def _measure_staging_window(workdir, num_peers):
    """Throughput of the same workload under a 3-round staging window."""
    config = _scenario(num_peers)
    environment = generate_federation_environment(config)
    federation = ProcessFederation(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        stage_rounds=3,
        stage_delay=0.025,
        workdir=str(workdir),
    )
    try:
        started = time.perf_counter()
        tickets = _submit_all(federation, environment)
        federation.drain(
            answer_strategy=expanding_answer, timeout=600.0, mode="watermark"
        )
        wall = time.perf_counter() - started
        assert all(ticket.is_done for ticket in tickets)
        metrics = federation.metrics()
        snapshot = federation.global_snapshot()
    finally:
        federation.close()
        federation.assert_reaped()
    assert databases_equivalent(snapshot, _reference_final(environment)), (
        "staged run diverged from the reference chase"
    )
    committed = sum(status["committed"] for status in metrics.values())
    frames = sum(sum(status["sent"].values()) for status in metrics.values())
    payloads = sum(status["payloads_received"] for status in metrics.values())
    staged = sum(
        (status.get("metrics") or {}).get("wire_payloads_staged", 0)
        for status in metrics.values()
    )
    flushes = sum(
        (status.get("metrics") or {}).get("wire_staged_flushes", 0)
        for status in metrics.values()
    )
    return {
        "peers": num_peers,
        "stage_rounds": 3,
        "stage_delay_seconds": 0.025,
        "wall_seconds": wall,
        "committed_updates_total": committed,
        "committed_per_second": committed / max(wall, 1e-9),
        "payloads_staged": staged,
        "staged_flushes": flushes,
        "frames_sent_total": frames,
        "payloads_per_frame": payloads / max(frames, 1),
    }


def test_drain_protocol_latency(tmp_path):
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    peer_counts = PEER_COUNTS.get(scale, PEER_COUNTS["small"])
    repeats = REPEATS.get(scale, 5)

    by_peers = []
    for num_peers in peer_counts:
        workdir = tmp_path / "drain-{}".format(num_peers)
        workdir.mkdir()
        by_peers.append(_measure_peer_count(workdir, num_peers, repeats))

    staging = _measure_staging_window(
        tmp_path / "staging", max(peer_counts)
    )
    headline = by_peers[-1]
    entry = {
        "scale": scale,
        "transport": "unix",
        "cpu_cores": os.cpu_count() or 1,
        "peer_counts": peer_counts,
        "by_peers": by_peers,
        "drain_speedup": headline["drain_speedup"],
        "watermark_seconds": headline["watermark_seconds"],
        "poll_seconds": headline["poll_seconds"],
        "staging_window": staging,
    }
    _merge_entry("drain_protocol", entry)

    for measured in by_peers:
        print(
            "\ndrain bench ({} peers): settle {:.2f}s/{} rounds "
            "(time-to-idle {}); idle drain poll {:.1f} ms/{} rounds vs "
            "watermark {:.1f} ms/{} rounds -> {:.2f}x".format(
                measured["peers"],
                measured["settle_wall_seconds"],
                measured["settle_rounds"],
                measured["time_to_idle_seconds"],
                measured["poll_seconds"] * 1e3,
                measured["poll_rounds"],
                measured["watermark_seconds"] * 1e3,
                measured["watermark_rounds"],
                measured["drain_speedup"],
            )
        )
    print(
        "  staging window ({} peers, 3 rounds/25 ms): {} staged across {} "
        "flushes, {:.2f} payloads/frame, {:.0f} commits/s".format(
            staging["peers"],
            staging["payloads_staged"],
            staging["staged_flushes"],
            staging["payloads_per_frame"],
            staging["committed_per_second"],
        )
    )

    # The watermark drain needs exactly one confirming round on an idle
    # federation; poll needs at least two (the fingerprint must repeat).
    for measured in by_peers:
        assert measured["watermark_rounds"] <= measured["poll_rounds"]

    if scale == "small" and os.environ.get("REPRO_BENCH_STRICT") == "1":
        eight = next(m for m in by_peers if m["peers"] == 8)
        assert eight["drain_speedup"] >= 2.0, (
            "watermark drain ({:.1f} ms) is not 2x faster than poll "
            "({:.1f} ms) at 8 peers".format(
                eight["watermark_seconds"] * 1e3,
                eight["poll_seconds"] * 1e3,
            )
        )
        assert staging["payloads_staged"] >= 1, (
            "the staging window never staged a payload"
        )
