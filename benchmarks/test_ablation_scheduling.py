"""Ablation: scheduling policy and the hybrid COARSE/PRECISE dependency policy.

Section 4.1 allows interleaving at step or stratum granularity and Section 5.2
discusses the choice; Section 6 sketches a per-update hybrid of COARSE and
PRECISE.  These benchmarks compare the alternatives on one conflict-heavy cell
of the synthetic workload.
"""

import pytest

from repro.concurrency.dependencies import CoarseTracker, HybridTracker, PreciseTracker
from repro.concurrency.optimistic import OptimisticScheduler
from repro.concurrency.policies import (
    LowestPriorityFirstPolicy,
    RoundRobinStepPolicy,
    RoundRobinStratumPolicy,
)
from repro.core.oracle import RandomOracle
from repro.core.terms import NullFactory
from repro.storage.versioned import VersionedDatabase
from repro.workload import INSERT_WORKLOAD, build_workload
from repro.workload.mapping_gen import mapping_prefix


def _run(environment, mapping_count, tracker, policy, seed=77, promote=False):
    mappings = mapping_prefix(environment.mappings, mapping_count)
    operations = build_workload(environment, INSERT_WORKLOAD, seed)
    store = VersionedDatabase(environment.schema)
    store.load_initial(environment.initial)
    scheduler = OptimisticScheduler(
        store=store,
        mappings=mappings,
        tracker=tracker,
        oracle=RandomOracle(seed=seed),
        policy=policy,
        null_factory=NullFactory.avoiding_view(environment.initial, prefix="g"),
        promote_restarts_to_precise=promote,
    )
    scheduler.submit_all(operations)
    return scheduler.run()


@pytest.fixture(scope="module")
def dense_count(experiment_config):
    return max(experiment_config.mapping_counts)


def test_ablation_step_vs_stratum_scheduling(benchmark, environment, dense_count):
    """Step-level vs stratum-level vs near-serial scheduling, COARSE dependencies."""

    def run_all():
        return {
            "step": _run(environment, dense_count, CoarseTracker(), RoundRobinStepPolicy()),
            "stratum": _run(environment, dense_count, CoarseTracker(), RoundRobinStratumPolicy()),
            "serial": _run(environment, dense_count, CoarseTracker(), LowestPriorityFirstPolicy()),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("Ablation — scheduling policy (COARSE, densest mapping setting):")
    for name, stats in results.items():
        print(
            "  {:<8} aborts={:<5} cascading-requests={:<5} steps={}".format(
                name, stats.aborts, stats.cascading_abort_requests, stats.steps
            )
        )
    # Near-serial execution eliminates aborts entirely; interleaved policies pay
    # for their concurrency with aborts.
    assert results["serial"].aborts == 0
    assert results["step"].aborts >= results["serial"].aborts
    assert results["stratum"].aborts >= results["serial"].aborts


def test_ablation_hybrid_dependency_policy(benchmark, environment, dense_count):
    """COARSE vs PRECISE vs the hybrid that promotes restarted updates to PRECISE."""

    def run_all():
        return {
            "COARSE": _run(environment, dense_count, CoarseTracker(), RoundRobinStepPolicy()),
            "PRECISE": _run(environment, dense_count, PreciseTracker(), RoundRobinStepPolicy()),
            "HYBRID": _run(
                environment,
                dense_count,
                HybridTracker(),
                RoundRobinStepPolicy(),
                promote=True,
            ),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("Ablation — dependency policy (densest mapping setting):")
    for name, stats in results.items():
        print(
            "  {:<8} aborts={:<5} cascading-requests={:<5} tracker-cost={}".format(
                name, stats.aborts, stats.cascading_abort_requests, stats.tracker_cost_units
            )
        )
    # The hybrid sits between the two pure policies in tracker cost while
    # keeping aborts no worse than COARSE.
    assert results["PRECISE"].aborts <= results["COARSE"].aborts
    assert results["HYBRID"].aborts <= results["COARSE"].aborts * 1.5 + 5
