"""Federation throughput benchmark: multi-peer exchange end to end.

Runs a generated multi-peer scenario through the federated closed-loop
driver, measures committed updates (user submissions plus exchange-envelope
updates) per second and the exchange traffic breakdown, verifies differential
convergence against the single-repository chase, and merges a ``federation``
entry into ``BENCH_scaling.json`` so the perf trajectory file carries the
multi-peer measurement alongside the tracker one (CI uploads the file as an
artifact from the non-blocking benchmarks job).

The closed-loop bench additionally replays the scenario with causal tracing
enabled over the wire-format transport: the span export lands in
``BENCH_trace.jsonl`` (uploaded next to the scaling file by CI), the entry
gains a measured per-phase decomposition of where the wall time goes — the
``wire_overhead_factor`` mystery as chase vs. validation vs. codec CPU vs.
simulated transit — and the run asserts that at least one remote firing's
causal chain reconstructs across peers.

Scales with ``REPRO_BENCH_SCALE`` (tiny/small/paper) like the other benches.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.oracle import AlwaysExpandOracle
from repro.obs.analysis import TraceAnalysis
from repro.obs.trace import Tracer
from repro.federation import (
    FederatedNetwork,
    Transport,
    check_convergence,
    reference_chase,
)
from repro.workload.federated_loop import (
    ArrivalProcess,
    FederatedClientSpec,
    FederatedClosedLoopDriver,
    FederatedOpenLoopDriver,
)
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)

SCALES = {
    "tiny": FederationScenarioConfig(
        num_peers=3, cross_mappings=4, operations_per_peer=4, initial_tuples=16, seed=0
    ),
    "small": FederationScenarioConfig(
        num_peers=4,
        cross_mappings=8,
        operations_per_peer=10,
        initial_tuples=40,
        seed=0,
    ),
    "paper": FederationScenarioConfig(
        num_peers=5,
        cross_mappings=12,
        relations_per_peer=6,
        operations_per_peer=25,
        initial_tuples=80,
        seed=0,
    ),
}

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scaling.json",
)

TRACE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_trace.jsonl",
)


def _merge_entry(key, entry):
    """Merge one entry into the trajectory file, preserving other keys."""
    recorded = {}
    if os.path.exists(RESULT_PATH):
        try:
            with open(RESULT_PATH) as handle:
                recorded = json.load(handle)
        except ValueError:
            recorded = {}
    recorded[key] = entry
    with open(RESULT_PATH, "w") as handle:
        json.dump(recorded, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _traced_replay(environment, config):
    """Re-run the scenario traced over the wire transport; analyse the spans.

    A separate replay (rather than tracing the measured run) keeps the
    throughput number clean: the measured run stays untraced, the replay
    pays for instrumentation and yields the decomposition.
    """
    tracer = Tracer()
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=1, wire=True),
        tracer=tracer,
    )
    specs = [
        FederatedClientSpec(peer=peer, name="client@{}".format(peer), operations=list(ops))
        for peer, ops in environment.operations.items()
    ]
    driver = FederatedClosedLoopDriver(network, specs, answer_delay=1)
    report = driver.run(max_rounds=20_000)
    assert report.all_done and report.drained
    tracer.export_jsonl(TRACE_PATH)
    return network, TraceAnalysis(tracer.spans)


def test_federation_throughput():
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    config = SCALES.get(scale, SCALES["small"])
    environment = generate_federation_environment(config)
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=1),
    )
    specs = [
        FederatedClientSpec(peer=peer, name="client@{}".format(peer), operations=list(ops))
        for peer, ops in environment.operations.items()
    ]
    driver = FederatedClosedLoopDriver(network, specs, answer_delay=1)
    started = time.perf_counter()
    report = driver.run(max_rounds=20_000)
    wall = time.perf_counter() - started
    assert report.all_done and report.drained

    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    convergence = check_convergence(network, reference)
    assert convergence.equivalent, convergence.summary()

    metrics = network.metrics()
    committed = sum(
        metrics["peer_{}_committed".format(peer)] for peer in network.peer_names()
    )
    # Per-peer latency percentiles: with heterogeneous peers (slow archive,
    # fast edge) these are the panel that shows the spread; homogeneous runs
    # record them too so the trajectory file carries a baseline.
    peer_latencies = {}
    for peer in network.peers():
        snapshot = peer.service.metrics_snapshot()
        peer_latencies[peer.name] = {
            "turnaround_p50_seconds": snapshot["turnaround_p50_seconds"],
            "turnaround_p95_seconds": snapshot["turnaround_p95_seconds"],
            "queue_wait_p50_seconds": snapshot["queue_wait_p50_seconds"],
            "queue_wait_p95_seconds": snapshot["queue_wait_p95_seconds"],
        }
    entry = {
        "scale": scale,
        "peers": config.num_peers,
        "user_operations": report.submitted,
        "rounds": report.rounds,
        "wall_seconds": wall,
        "committed_updates_total": committed,
        "committed_per_second": committed / max(wall, 1e-9),
        "transport_sent": metrics["transport_sent"],
        "firings_delivered": metrics["firings_delivered"],
        "updates_routed": metrics["updates_routed"],
        "questions_routed": metrics["questions_routed"],
        "convergence_equivalent": convergence.equivalent,
        "federation_aborts": convergence.federation_aborts,
        "peer_latencies": peer_latencies,
    }

    # Traced replay: causal-chain verification plus the measured phase
    # decomposition, exported for repro-trace and the CI artifact.
    traced_network, analysis = _traced_replay(environment, config)
    chains = analysis.cross_peer_chains()
    assert chains, "no remote firing's causal chain reconstructed across peers"
    breakdown = analysis.phase_breakdown()
    entry["trace_phase_breakdown"] = breakdown
    entry["trace_wire_bytes_by_kind"] = analysis.wire_bytes_by_kind()
    entry["trace_cross_peer_chains"] = len(chains)
    entry["trace_spans"] = len(analysis.spans)

    # The exported trace must be consumable by the analysis CLI.
    from repro.obs.cli import main as trace_cli
    assert trace_cli([TRACE_PATH]) == 0

    # Merge into the trajectory file next to the tracker measurement.
    _merge_entry("federation", entry)

    print(
        "\nfederation bench ({} peers, {} scale): {} user ops -> {} committed "
        "updates in {:.2f}s over {} rounds ({:.0f} commits/s, {} envelopes)".format(
            config.num_peers,
            scale,
            report.submitted,
            committed,
            wall,
            report.rounds,
            entry["committed_per_second"],
            metrics["transport_sent"],
        )
    )
    print(
        "  traced replay: {} spans, {} cross-peer chains; phase seconds "
        "queue={:.4f} chase={:.4f} validate={:.4f} wire={:.4f} park={:.4f} "
        "transit={:.4f}".format(
            entry["trace_spans"],
            entry["trace_cross_peer_chains"],
            breakdown["queue"],
            breakdown["chase"],
            breakdown["validate"],
            breakdown["wire"],
            breakdown["park"],
            breakdown["transit"],
        )
    )


def test_federation_open_loop_throughput():
    """Open-loop (bursty batch) arrivals: the admission-headroom measurement.

    The closed-loop bench self-paces, so admission queues stay near empty and
    group admission has nothing to group; the ROADMAP (PR 4 follow-up) asked
    for bursty arrivals to measure it properly.  This run submits each peer's
    stream in fixed-size bursts through the open-loop driver and records a
    ``federation_open_loop`` entry: throughput, observed queue depths,
    admission backoffs, and the differential convergence verdict.
    """
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    config = SCALES.get(scale, SCALES["small"])
    environment = generate_federation_environment(config)
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=1),
    )
    arrivals = ArrivalProcess(kind="batch", batch_size=max(
        2, config.operations_per_peer // 2
    ), interval=3, seed=config.seed)
    driver = FederatedOpenLoopDriver(
        network,
        {peer: list(ops) for peer, ops in environment.operations.items()},
        arrivals,
        answer_delay=1,
    )
    started = time.perf_counter()
    report = driver.run(max_rounds=20_000)
    wall = time.perf_counter() - started
    assert report.all_submitted and report.drained

    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    convergence = check_convergence(network, reference)
    assert convergence.equivalent, convergence.summary()

    metrics = network.metrics()
    committed = sum(
        metrics["peer_{}_committed".format(peer)] for peer in network.peer_names()
    )
    entry = {
        "scale": scale,
        "peers": config.num_peers,
        "arrivals": "batch({}@{})".format(arrivals.batch_size, arrivals.interval),
        "user_operations": report.submitted,
        "rounds": report.rounds,
        "wall_seconds": wall,
        "committed_updates_total": committed,
        "committed_per_second": committed / max(wall, 1e-9),
        "admission_backoffs": report.backoffs,
        "max_queue_depth": report.max_queue_depth,
        "transport_sent": metrics["transport_sent"],
        "transport_wire_bytes_sent": metrics["transport_wire_bytes_sent"],
        "convergence_equivalent": convergence.equivalent,
    }
    _merge_entry("federation_open_loop", entry)

    print(
        "\nfederation open-loop bench ({} scale): {} ops in bursts -> "
        "{} committed in {:.2f}s ({:.0f} commits/s, peak queue {}, "
        "{} backoffs, {} wire bytes)".format(
            scale,
            report.submitted,
            committed,
            wall,
            entry["committed_per_second"],
            report.max_queue_depth,
            report.backoffs,
            metrics["transport_wire_bytes_sent"],
        )
    )
