"""Telemetry overhead bench: the live plane must cost < 5% committed/s.

Runs the *same* generated scenario through two socket federations in one
process invocation: once with the telemetry plane fully on (unsolicited
heartbeats at a tight interval plus the always-on flight recorder) and once
with it fully off (``telemetry_interval=0``, ``flight=False``).  The
``telemetry_overhead`` entry merged into ``BENCH_scaling.json`` records
both committed/s measurements and their ratio; ``.github/compare_bench.py``
tracks ``on_vs_off`` so a regression that makes heartbeats expensive shows
up in the trajectory.

The order (off first, then on) deliberately hands any warm-cache advantage
to the *off* run: if the on run still lands within budget, the measured
overhead is an upper bound, not an artifact.

``REPRO_BENCH_STRICT=1`` at the default (``small``) scale turns the < 5%
budget into an assertion, like the other benches.
"""

from __future__ import annotations

import os
import time

from repro.federation import ProcessFederation, databases_equivalent
from repro.workload.federated_loop import expanding_answer
from repro.workload.federation_gen import generate_federation_environment

from test_sockets import SCALES, _merge_entry

#: Tight on purpose: at 50 ms the on run pays ~20 heartbeats/s/peer, a
#: harsher duty cycle than the 250 ms production default.
TELEMETRY_INTERVAL = 0.05
OVERHEAD_BUDGET = 0.05


def _run_once(config, workdir, telemetry):
    environment = generate_federation_environment(config)
    federation = ProcessFederation(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport="unix",
        workdir=workdir,
        telemetry_interval=TELEMETRY_INTERVAL if telemetry else 0.0,
        flight=telemetry,
    )
    try:
        started = time.perf_counter()
        tickets = []
        for peer in sorted(environment.operations):
            for operation in environment.operations[peer]:
                tickets.append(federation.submit(peer, operation))
        federation.drain(answer_strategy=expanding_answer, timeout=600.0)
        wall = time.perf_counter() - started
        assert all(ticket.is_done for ticket in tickets)
        metrics = federation.metrics()
        snapshot = federation.global_snapshot()
    finally:
        federation.close()
        federation.assert_reaped()
    committed = sum(status["committed"] for status in metrics.values())
    assert committed >= len(tickets)
    return snapshot, committed, wall


def test_telemetry_overhead(tmp_path):
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    config = SCALES.get(scale, SCALES["small"])

    snapshot_off, committed_off, wall_off = _run_once(
        config, str(tmp_path / "off"), telemetry=False
    )
    snapshot_on, committed_on, wall_on = _run_once(
        config, str(tmp_path / "on"), telemetry=True
    )
    # Telemetry must be pure observation: both runs converge identically.
    assert databases_equivalent(snapshot_on, snapshot_off)

    per_second_on = committed_on / max(wall_on, 1e-9)
    per_second_off = committed_off / max(wall_off, 1e-9)
    on_vs_off = per_second_on / per_second_off
    entry = {
        "scale": scale,
        "peers": config.num_peers,
        "cpu_cores": os.cpu_count() or 1,
        "telemetry_interval_seconds": TELEMETRY_INTERVAL,
        "committed_per_second_on": per_second_on,
        "committed_per_second_off": per_second_off,
        "wall_seconds_on": wall_on,
        "wall_seconds_off": wall_off,
        "on_vs_off": on_vs_off,
        "overhead_fraction": max(0.0, 1.0 - on_vs_off),
        "budget_fraction": OVERHEAD_BUDGET,
    }
    _merge_entry("telemetry_overhead", entry)

    print(
        "\ntelemetry overhead bench ({} scale, {} cores): off {:.0f}/s, "
        "on {:.0f}/s at {:.0f} ms heartbeats -> {:.1%} overhead".format(
            scale,
            entry["cpu_cores"],
            per_second_off,
            per_second_on,
            TELEMETRY_INTERVAL * 1000,
            entry["overhead_fraction"],
        )
    )

    if scale == "small" and os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert entry["overhead_fraction"] < OVERHEAD_BUDGET, (
            "telemetry cost {:.1%} committed/s, over the {:.0%} budget".format(
                entry["overhead_fraction"], OVERHEAD_BUDGET
            )
        )
