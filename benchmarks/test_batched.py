"""Batched-execution benchmark: the federation workload with batching on.

Runs the *same* generated multi-peer scenario as ``test_federation.py``
(same scale, same seed, same closed-loop driver pacing) in two
configurations:

* **baseline** — the PR 3 execution model: per-envelope staging and sends,
  singleton commits, plain FIFO admission (the default
  :class:`~repro.service.admission.AdmissionConfig`);
* **batched** — the full batched path: commit batches with one listener
  round and one compaction sweep, per-batch envelope coalescing, per-
  destination transport bundles, and compatible-group admission tuned to
  keep intra-peer conflicts (and therefore aborts) low.

Both runs must converge to the single-repository reference chase, and their
global snapshots must be homomorphically equivalent to each other
(``semantics_match``).  Wall clock is taken as the best of ``RUNS`` repeats
(recorded as such) — throughput benches on shared CI boxes measure capacity,
not scheduler-noise percentiles.  The resulting ``batched`` entry is merged
into ``BENCH_scaling.json``; at the default (small) scale the batched
throughput must be at least twice the PR 3 federation measurement recorded
there (2489 committed/s).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.oracle import AlwaysExpandOracle
from repro.obs.analysis import PHASES, TraceAnalysis
from repro.obs.trace import Tracer
from repro.federation import (
    FederatedNetwork,
    Transport,
    check_convergence,
    databases_equivalent,
    reference_chase,
)
from repro.service.admission import AdmissionConfig
from repro.workload.federated_loop import (
    FederatedClientSpec,
    FederatedClosedLoopDriver,
)
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)

from test_federation import SCALES

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scaling.json",
)

#: The federation throughput PR 3 recorded in ``BENCH_scaling.json`` at the
#: small scale (the number the tentpole's >=2x target is measured against).
PR3_COMMITTED_PER_SECOND = 2489.47

#: The in-run PR 3-mode baseline PR 4 measured alongside its 2x result, on
#: the machine that recorded it.  Strict mode scales the absolute 2x bar by
#: ``measured_baseline / PR4_BASELINE_COMMITTED_PER_SECOND`` so the check
#: tests the *batching* speedup rather than the CI runner's clock speed.
PR4_BASELINE_COMMITTED_PER_SECOND = 4135.61

#: Timed repeats per configuration; the recorded wall is the best of them.
RUNS = 7

#: Admission for the batched path: admit compatible (relation-disjoint)
#: groups and keep at most two updates in flight per peer — on this
#: workload's conflict structure wider admission buys aborts, not
#: throughput, so the group scheduler stays narrow and clean.
BATCHED_ADMISSION = AdmissionConfig(
    max_in_flight=2, batch_size=2, compatible_groups=True
)


def _run_once(environment, batched: bool, wire: bool = False, tracer=None):
    # ``wire=False`` isolates the batched-execution measurement from the
    # PR 5 byte-codec cost, keeping it comparable with the PR 3/PR 4
    # recorded numbers; the wire-mode run is measured (and recorded)
    # separately below.
    if batched:
        network = FederatedNetwork(
            environment.schema,
            environment.initial,
            list(environment.mappings),
            environment.ownership,
            transport=Transport(delay=1, wire=wire),
            coalesce_envelopes=True,
            group_commit=True,
            admission=BATCHED_ADMISSION,
            tracer=tracer,
        )
    else:
        network = FederatedNetwork(
            environment.schema,
            environment.initial,
            list(environment.mappings),
            environment.ownership,
            transport=Transport(delay=1, wire=wire),
            coalesce_envelopes=False,
            group_commit=False,
            tracer=tracer,
        )
    specs = [
        FederatedClientSpec(peer=peer, name="client@{}".format(peer), operations=list(ops))
        for peer, ops in environment.operations.items()
    ]
    driver = FederatedClosedLoopDriver(network, specs, answer_delay=1)
    started = time.perf_counter()
    report = driver.run(max_rounds=20_000)
    wall = time.perf_counter() - started
    assert report.all_done and report.drained
    metrics = network.metrics()
    committed = sum(
        metrics["peer_{}_committed".format(peer)] for peer in network.peer_names()
    )
    return wall, committed, report.rounds, metrics, network


def _measure(environment, batched: bool):
    best = None
    for _ in range(RUNS):
        result = _run_once(environment, batched)
        if best is None or result[0] < best[0]:
            best = result
    return best


def test_batched_federation_throughput():
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    config = SCALES.get(scale, SCALES["small"])
    environment = generate_federation_environment(config)

    # Warm the process-wide plan caches so both configurations compile even.
    _run_once(environment, batched=True)

    base_wall, base_committed, base_rounds, base_metrics, base_net = _measure(
        environment, batched=False
    )
    wall, committed, rounds, metrics, network = _measure(environment, batched=True)

    # PR 5: the same batched configuration over the byte transport — the
    # codec's end-to-end cost, measured rather than guessed.  One timed run
    # is enough for an overhead gauge (the entry records it as such).
    wire_wall, wire_committed, _, wire_metrics, _ = _run_once(
        environment, batched=True, wire=True
    )

    # The ``wire_overhead_factor`` decomposition: one traced wire-mode run
    # splits the wall time into measured phases — how much is codec CPU
    # (encode+decode), how much simulated transit, how much chase vs.
    # validation — turning the overhead ratio from a mystery into numbers.
    tracer = Tracer()
    _run_once(environment, batched=True, wire=True, tracer=tracer)
    analysis = TraceAnalysis(tracer.spans)
    phase_seconds = analysis.phase_breakdown()
    phase_total = sum(phase_seconds.values()) or 1e-9

    # Differential semantics: both executions are the same chase, up to null
    # renaming — and both equal the single-repository reference.
    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    convergence = check_convergence(network, reference)
    assert convergence.equivalent, convergence.summary()
    base_convergence = check_convergence(base_net, reference)
    assert base_convergence.equivalent, base_convergence.summary()
    semantics_match = databases_equivalent(
        network.global_snapshot(), base_net.global_snapshot()
    )
    assert semantics_match

    # Batching must strictly reduce wire traffic (coalescing + bundles).
    assert metrics["transport_sent"] <= base_metrics["transport_sent"]

    committed_per_second = committed / max(wall, 1e-9)
    entry = {
        "scale": scale,
        "peers": config.num_peers,
        "runs_per_config": RUNS,
        "wall_seconds_best": wall,
        "rounds": rounds,
        "committed_updates_total": committed,
        "committed_per_second": committed_per_second,
        "baseline_wall_seconds_best": base_wall,
        "baseline_committed_per_second": base_committed / max(base_wall, 1e-9),
        "pr3_committed_per_second": PR3_COMMITTED_PER_SECOND,
        "speedup_vs_pr3_recorded": committed_per_second / PR3_COMMITTED_PER_SECOND,
        "transport_sent": metrics["transport_sent"],
        "transport_bundles_sent": metrics["transport_bundles_sent"],
        "transport_payloads_sent": metrics["transport_payloads_sent"],
        "baseline_transport_sent": base_metrics["transport_sent"],
        "envelopes_coalesced": metrics["envelopes_coalesced"],
        "restarts": sum(
            metrics["peer_{}_restarts".format(peer)] for peer in network.peer_names()
        ),
        "baseline_restarts": sum(
            base_metrics["peer_{}_restarts".format(peer)]
            for peer in base_net.peer_names()
        ),
        "semantics_match": semantics_match,
        "convergence_equivalent": convergence.equivalent,
        # The byte-transport gauge: same batched configuration, payloads
        # codec-encoded at send and decoded at delivery (single timed run).
        "wire_committed_per_second": wire_committed / max(wire_wall, 1e-9),
        "wire_bytes_sent": wire_metrics["transport_wire_bytes_sent"],
        "wire_overhead_factor": (wire_committed / max(wire_wall, 1e-9))
        / max(committed_per_second, 1e-9),
        # Measured decomposition of the traced wire-mode run (seconds per
        # phase and each phase's share of the instrumented time).
        "trace_phase_breakdown": phase_seconds,
        "trace_phase_fractions": {
            phase: phase_seconds[phase] / phase_total for phase in PHASES
        },
        "trace_wire_codec_seconds": phase_seconds["wire"],
        "trace_wire_bytes_by_kind": analysis.wire_bytes_by_kind(),
    }

    from test_federation import _merge_entry

    _merge_entry("batched", entry)

    print(
        "\nbatched federation bench ({} peers, {} scale): {} committed in "
        "{:.4f}s ({:.0f}/s, best of {}) vs baseline {:.0f}/s; "
        "{} envelopes ({} bundles, {} coalesced away), {} restarts "
        "(baseline {})".format(
            config.num_peers,
            scale,
            committed,
            wall,
            committed_per_second,
            RUNS,
            entry["baseline_committed_per_second"],
            metrics["transport_sent"],
            metrics["transport_bundles_sent"],
            metrics["envelopes_coalesced"],
            entry["restarts"],
            entry["baseline_restarts"],
        )
    )
    print(
        "  wire phase decomposition (traced run): "
        + "  ".join(
            "{}={:.4f}s ({:.0f}%)".format(
                phase,
                phase_seconds[phase],
                100.0 * entry["trace_phase_fractions"][phase],
            )
            for phase in PHASES
        )
    )

    if scale == "small" and os.environ.get("REPRO_BENCH_STRICT") == "1":
        # The PR 4 tentpole's acceptance bar: at the PR 3 entry's scale and
        # seed, batched execution moves at least twice the throughput PR 3
        # recorded for the per-update path — normalized by machine capacity
        # (the in-run baseline vs the baseline the recording machine
        # measured), so a slower CI runner tests the batching speedup, not
        # its own clock.  Strict mode is opt-in (the non-blocking CI
        # benchmarks job sets it) so a loaded tier-1 runner cannot flake the
        # blocking suite on wall-clock noise.
        capacity = entry["baseline_committed_per_second"] / PR4_BASELINE_COMMITTED_PER_SECOND
        bar = 2 * PR3_COMMITTED_PER_SECOND * capacity
        assert committed_per_second >= bar, (
            "batched federation throughput {:.0f}/s did not reach the "
            "capacity-normalized 2x PR 3 bar {:.0f}/s (machine capacity "
            "factor {:.2f})".format(committed_per_second, bar, capacity)
        )
        assert committed_per_second >= entry["baseline_committed_per_second"], (
            "batching must not lose to the per-update baseline"
        )
