"""Scaling benchmark: PRECISE tracker overhead at multiples of the small scale.

The PRECISE dependency tracker is the paper's expensive-but-accurate end of
the cascading-abort spectrum (Figures 3c/4c).  Before the indexed write log,
the seeded delta tests and store compaction, every tracked read scanned (and
copied) the full global write log and re-evaluated full violation queries
twice per candidate write — tracker cost grew superlinearly with run length.

This benchmark runs the 25-mapping, all-insert PRECISE workload at a multiple
of the default experiment scale twice:

* once with ``LegacyPreciseTracker``, a faithful replica of the pre-index
  implementation (full log scan, full double evaluation per delta test, no
  commit-time compaction), and
* once with the current :class:`~repro.concurrency.dependencies.PreciseTracker`
  on a compacting store,

and asserts that (a) the two runs are *semantically identical* — same
``cost_units``, same aborts, same cascading-abort requests, so the Figure 3/4
panels are unchanged — and (b) the indexed tracker's wall-clock overhead is at
least ``MIN_SPEEDUP`` times smaller.  The measurements land in
``BENCH_scaling.json`` at the repository root so future PRs have a recorded
perf trajectory (CI uploads it as an artifact).
"""

from __future__ import annotations

import json
import os
import time

from repro.concurrency.dependencies import DependencyTracker, PreciseTracker
from repro.concurrency.optimistic import OptimisticScheduler
from repro.concurrency.policies import make_policy
from repro.core.oracle import RandomOracle
from repro.core.terms import NullFactory
from repro.storage.overlay import view_without_write
from repro.storage.versioned import VersionedDatabase
from repro.workload.experiment import (
    ExperimentConfig,
    INSERT_WORKLOAD,
    build_environment,
    build_workload,
)
from repro.workload.mapping_gen import mapping_prefix

#: Mapping density of the measured workload (the densest Figure 3 cell).
MAPPING_COUNT = 25

#: Scale multiplier over ``ExperimentConfig.small_scale`` per bench scale.
SCALE_FACTORS = {"tiny": 1, "small": 3, "paper": 4}

#: Required tracker-overhead reduction.  The acceptance bar is 3x at the
#: default scale; the tiny CI smoke run keeps a soft bar because sub-100ms
#: timings are noisy.
MIN_SPEEDUP = {"tiny": 1.5, "small": 3.0, "paper": 3.0}

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scaling.json",
)


class LegacyPreciseTracker(DependencyTracker):
    """Replica of the pre-indexed-log PRECISE tracker (the pre-PR hot path).

    Scans the full write log per read and answers each delta test by fully
    evaluating the query on the reader's view and on the view with the write
    undone.  Correction queries keep their database-free exact test, exactly
    as before.
    """

    name = "PRECISE"

    def dependencies(self, query, reader, store, view, abortable):
        self.reads_processed += 1
        found = set()
        for entry in store.write_log():
            if entry.priority >= reader or entry.priority not in abortable:
                continue
            if entry.priority in found:
                self.cost_units += 1
                continue
            self.cost_units += 2 * query.evaluation_cost()
            if self._legacy_affected(query, entry.write, view):
                found.add(entry.priority)
        return found

    @staticmethod
    def _legacy_affected(query, write, view):
        if not query.might_be_affected_by(write):
            return False
        if query.kind in ("more-specific", "null-occurrence"):
            # Database-free exact tests, unchanged from the historical code.
            return query.affected_by(write, view)
        return query.evaluate(view) != query.evaluate(view_without_write(view, write))


def _timed(tracker_class):
    """Subclass *tracker_class* with wall-clock accounting per tracked read."""

    class Timed(tracker_class):
        def __init__(self):
            super().__init__()
            self.tracker_seconds = 0.0

        def dependencies(self, *args, **kwargs):
            started = time.perf_counter()
            try:
                return super().dependencies(*args, **kwargs)
            finally:
                self.tracker_seconds += time.perf_counter() - started

    return Timed()


def _run_workload(environment, config, tracker, compact_committed, group_commit=True):
    mappings = mapping_prefix(environment.mappings, MAPPING_COUNT)
    operations = build_workload(environment, INSERT_WORKLOAD, config.seed)
    store = VersionedDatabase(environment.schema)
    store.load_initial(environment.initial)
    scheduler = OptimisticScheduler(
        store=store,
        mappings=mappings,
        tracker=tracker,
        oracle=RandomOracle(seed=config.seed),
        policy=make_policy(config.policy),
        null_factory=NullFactory.avoiding_view(environment.initial, prefix="g"),
        max_total_steps=config.max_total_steps,
        compact_committed=compact_committed,
        group_commit=group_commit,
    )
    scheduler.submit_all(operations)
    started = time.perf_counter()
    statistics = scheduler.run()
    wall = time.perf_counter() - started
    return {
        "tracker_seconds": tracker.tracker_seconds,
        "wall_seconds": wall,
        "cost_units": tracker.cost_units,
        "reads": tracker.reads_processed,
        "aborts": statistics.aborts,
        "cascading_abort_requests": statistics.cascading_abort_requests,
        "cascading_aborts": statistics.cascading_aborts,
        "final_log_entries": store.log_size(),
        "final_versions": store.version_count(),
    }


def test_precise_tracker_scaling():
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    factor = SCALE_FACTORS.get(scale, SCALE_FACTORS["small"])
    base = ExperimentConfig.small_scale()
    config = base.scaled(
        num_updates=base.num_updates * factor,
        num_initial_tuples=base.num_initial_tuples * (2 if factor > 1 else 1),
    )
    environment = build_environment(config)

    legacy = _run_workload(
        environment, config, _timed(LegacyPreciseTracker), compact_committed=False
    )
    indexed = _run_workload(
        environment, config, _timed(PreciseTracker), compact_committed=True
    )

    # The optimization must not alter tracker decisions, only their cost: the
    # Figure 3/4 panel inputs must be identical run to run.
    assert indexed["cost_units"] == legacy["cost_units"]
    assert indexed["reads"] == legacy["reads"]
    assert indexed["aborts"] == legacy["aborts"]
    assert indexed["cascading_abort_requests"] == legacy["cascading_abort_requests"]
    assert indexed["cascading_aborts"] == legacy["cascading_aborts"]

    tracker_speedup = legacy["tracker_seconds"] / max(indexed["tracker_seconds"], 1e-9)
    wall_speedup = legacy["wall_seconds"] / max(indexed["wall_seconds"], 1e-9)
    report = {
        "workload": INSERT_WORKLOAD,
        "mapping_count": MAPPING_COUNT,
        "scale": scale,
        "scale_factor_vs_small": factor,
        "num_updates": config.num_updates,
        "num_initial_tuples": config.num_initial_tuples,
        "legacy": legacy,
        "indexed": indexed,
        "tracker_speedup": tracker_speedup,
        "wall_speedup": wall_speedup,
        "semantics_match": True,
    }
    # Merge into the trajectory file: overwrite only this bench's keys so
    # entries recorded by other benches (e.g. "federation") survive.
    merged = {}
    if os.path.exists(RESULT_PATH):
        try:
            with open(RESULT_PATH) as handle:
                merged = json.load(handle)
        except ValueError:
            merged = {}
    merged.update(report)
    with open(RESULT_PATH, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        "\nPRECISE tracker overhead at {}x scale, {} mappings: "
        "legacy {:.2f}s vs indexed {:.2f}s ({:.1f}x); "
        "run wall {:.2f}s vs {:.2f}s ({:.1f}x)".format(
            factor,
            MAPPING_COUNT,
            legacy["tracker_seconds"],
            indexed["tracker_seconds"],
            tracker_speedup,
            legacy["wall_seconds"],
            indexed["wall_seconds"],
            wall_speedup,
        )
    )

    # Compaction is the second half of the story: the compacting store ends
    # the run with an empty log (everything committed), the legacy store with
    # every write ever logged.
    assert indexed["final_log_entries"] <= legacy["final_log_entries"]

    if os.environ.get("REPRO_BENCH_BATCH") == "1":
        # Batched-path smoke (CI tier-1 sets this at tiny scale): re-run the
        # indexed workload with singleton commits and assert the group-commit
        # path changed nothing the panels measure.
        singleton = _run_workload(
            environment,
            config,
            _timed(PreciseTracker),
            compact_committed=True,
            group_commit=False,
        )
        for key in (
            "cost_units",
            "reads",
            "aborts",
            "cascading_abort_requests",
            "cascading_aborts",
            "final_log_entries",
            "final_versions",
        ):
            assert indexed[key] == singleton[key], key
        print("batched-path smoke: group-commit run identical to singleton run")

    assert tracker_speedup >= MIN_SPEEDUP.get(scale, 3.0), (
        "indexed PRECISE tracker must be at least {}x faster than the "
        "pre-index scan (measured {:.1f}x)".format(
            MIN_SPEEDUP.get(scale, 3.0), tracker_speedup
        )
    )
