"""Figure 3: the all-insert workload (aborts, cascading requests, PRECISE slowdown).

Each benchmark regenerates one panel of Figure 3 from the shared experiment
run and asserts the paper's qualitative shape:

* panel (a): NAIVE suffers far more aborts than COARSE, which suffers at least
  as many as PRECISE, and abort counts grow with mapping density;
* panel (b): COARSE issues many cascading abort requests while PRECISE issues
  almost none at low density;
* panel (c): PRECISE pays a per-update execution-time penalty over COARSE
  (between roughly 1.4x and 4.5x in the paper).
"""

from conftest import print_series, print_slowdown


def _densest(series):
    """The value at the highest mapping density of a per-algorithm series."""
    return {algorithm: points[-1][1] for algorithm, points in series.items() if points}


def test_fig3_aborts(benchmark, figure3_result):
    """Panel (a): total aborts vs. number of mappings."""
    series = benchmark.pedantic(
        figure3_result.abort_series, rounds=1, iterations=1
    )
    print_series("Figure 3(a) — aborts vs mappings (all-insert)", series)
    top = _densest(series)
    # NAIVE is the strawman: it never does better than the dependency-tracking
    # algorithms.  COARSE and PRECISE can be close at reduced scale, so the
    # COARSE >= PRECISE comparison carries a small-sample tolerance.
    assert top["NAIVE"] >= top["COARSE"]
    assert top["NAIVE"] >= top["PRECISE"]
    assert top["PRECISE"] <= top["COARSE"] * 1.5 + 5
    # Aborts grow with density for every algorithm (weakly).
    for points in series.values():
        assert points[0][1] <= points[-1][1]
    if top["NAIVE"] == 0:
        print("  (no conflicts at this benchmark scale; shape assertions are vacuous)")


def test_fig3_cascading_requests(benchmark, figure3_result):
    """Panel (b): cascading abort requests vs. number of mappings."""
    series = benchmark.pedantic(
        figure3_result.cascading_request_series, rounds=1, iterations=1
    )
    print_series("Figure 3(b) — cascading abort requests (all-insert)", series)
    top = _densest(series)
    assert top["COARSE"] >= top["PRECISE"]
    assert top["NAIVE"] >= top["PRECISE"]
    # PRECISE requests no (or almost no) cascading aborts at the sparsest setting.
    precise_points = dict(series["PRECISE"])
    sparsest = min(precise_points)
    assert precise_points[sparsest] <= 1


def test_fig3_precise_slowdown(benchmark, figure3_result):
    """Panel (c): per-update slowdown of PRECISE relative to COARSE."""
    wall = benchmark.pedantic(
        figure3_result.precise_slowdown_series, rounds=1, iterations=1
    )
    cost = figure3_result.precise_slowdown_series(use_cost_model=True)
    print_slowdown("Figure 3(c) — slowdown of PRECISE vs COARSE (wall clock)", wall)
    print_slowdown("Figure 3(c) — slowdown of PRECISE vs COARSE (cost model)", cost)
    assert wall, "need at least one density with both COARSE and PRECISE"
    # At the densest setting PRECISE is slower per update than COARSE, provided
    # the scale produced any concurrency-control work at all.
    densest = figure3_result.cell(wall[-1][0], "COARSE")
    if densest.aborts > 0 or densest.cascading_abort_requests > 0:
        assert wall[-1][1] > 1.0
        assert cost[-1][1] > 1.0
