"""Shared pytest fixtures: the paper's example repositories and small helpers."""

from __future__ import annotations

import pytest

from repro.core.oracle import AlwaysUnifyOracle, RandomOracle
from repro.core.chase import ChaseConfig, ChaseEngine
from repro.fixtures import (
    genealogy_mappings,
    genealogy_repository,
    travel_database,
    travel_mappings,
    travel_repository,
)
from repro.storage.versioned import VersionedDatabase


@pytest.fixture
def travel():
    """A fresh copy of the Figure 2 repository: ``(database, mappings)``."""
    return travel_repository()


@pytest.fixture
def travel_db(travel):
    """The Figure 2 database alone."""
    return travel[0]


@pytest.fixture
def travel_maps(travel):
    """The Figure 2 mappings alone."""
    return travel[1]


@pytest.fixture
def travel_engine(travel):
    """A chase engine over the Figure 2 repository with a seeded random oracle."""
    database, mappings = travel
    return ChaseEngine(database, mappings, oracle=RandomOracle(seed=0))


@pytest.fixture
def genealogy():
    """The genealogy repository: ``(database, mappings)``."""
    return genealogy_repository()


@pytest.fixture
def versioned_travel(travel):
    """The Figure 2 repository loaded into a multiversion store."""
    database, mappings = travel
    store = VersionedDatabase(database.schema)
    store.load_initial(database.snapshot())
    return store, mappings
