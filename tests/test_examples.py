"""Smoke tests: every example script runs to completion and prints what it promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run_example(name, timeout=300):
    script = EXAMPLES_DIR / name
    assert script.exists(), "missing example {}".format(name)
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart_example():
    output = _run_example("quickstart.py")
    assert "satisfies all mappings: True" in output
    assert "insert R(ABC Tours, Niagara Falls" in output
    assert "Breathtaking falls!" in output


def test_travel_repository_example():
    output = _run_example("travel_repository.py")
    assert "Mapping graph has a cycle: True" in output
    assert "satisfied: True" in output
    assert "delete" in output


def test_genealogy_example():
    output = _run_example("genealogy.py")
    assert "Weakly acyclic" in output
    assert "Father(" in output
    assert "satisfied: True" in output


def test_interference_example():
    output = _run_example("interference.py")
    assert "aborts=1" in output
    assert "matches the serial order u1 -> u2: True" in output


def test_service_demo_example():
    output = _run_example("service_demo.py")
    assert "opened 8 client sessions" in output
    assert "8 updates parked on frontier questions" in output
    assert "steps while parked unchanged: True" in output
    assert "resumed by bo and is now: committed" in output
    assert "committed updates: 8" in output
    assert "p50 frontier wait" in output


def test_federation_demo_example():
    output = _run_example("federation_demo.py")
    assert "federation of 3 peers" in output
    assert "offer cascaded" in output
    assert "routes to portal" in output
    assert "routed back to the archive" in output
    assert "archive partitioned" in output
    assert "federation quiescent: True" in output
    assert "convergence: EQUIVALENT" in output


@pytest.mark.slow
def test_synthetic_workload_example():
    output = _run_example("synthetic_workload.py", timeout=900)
    assert "Workload: all-insert" in output
    assert "PRECISE" in output
