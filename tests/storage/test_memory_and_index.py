"""Tests for the in-memory store, its index, snapshots and overlay views."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schema import DatabaseSchema, SchemaError
from repro.core.terms import Constant, LabeledNull
from repro.core.tuples import Tuple, make_tuple
from repro.core.writes import delete, insert, modify
from repro.storage.index import PositionIndex
from repro.storage.interface import DatabaseView, dump_sorted
from repro.storage.memory import MemoryDatabase
from repro.storage.overlay import OverlayView, view_with_write, view_without_write


@pytest.fixture
def small_db():
    schema = DatabaseSchema.from_dict({"P": ["a", "b"], "Q": ["a"]})
    return MemoryDatabase(schema)


class TestMemoryDatabase:
    def test_insert_and_contains(self, small_db):
        row = make_tuple("P", "x", "y")
        assert small_db.insert(row)
        assert small_db.contains(row)
        assert not small_db.insert(row), "duplicate insert is a no-op"
        assert small_db.count("P") == 1

    def test_delete(self, small_db):
        row = make_tuple("P", "x", "y")
        small_db.insert(row)
        assert small_db.delete(row)
        assert not small_db.delete(row)
        assert small_db.count("P") == 0

    def test_schema_violations_rejected(self, small_db):
        with pytest.raises(SchemaError):
            small_db.insert(make_tuple("P", "only-one"))
        with pytest.raises(SchemaError):
            small_db.insert(make_tuple("Unknown", "x"))
        with pytest.raises(SchemaError):
            list(small_db.tuples("Unknown"))

    def test_indexed_value_lookup(self, small_db):
        small_db.insert(make_tuple("P", "x", "y"))
        small_db.insert(make_tuple("P", "x", "z"))
        small_db.insert(make_tuple("P", "w", "y"))
        found = set(small_db.tuples_with_value("P", 0, Constant("x")))
        assert found == {make_tuple("P", "x", "y"), make_tuple("P", "x", "z")}

    def test_null_occurrence_lookup(self, small_db):
        null = LabeledNull("n1")
        small_db.insert(Tuple("P", [null, Constant("y")]))
        small_db.insert(make_tuple("Q", "v"))
        found = set(small_db.tuples_containing_null(null))
        assert found == {Tuple("P", [null, Constant("y")])}

    def test_replace_null_rewrites_and_merges(self, small_db):
        null = LabeledNull("n1")
        small_db.insert(Tuple("P", [null, Constant("y")]))
        small_db.insert(make_tuple("P", "v", "y"))
        modified = small_db.replace_null(null, Constant("v"))
        assert modified == [make_tuple("P", "v", "y")]
        # The rewritten tuple collides with the existing one: set semantics merge them.
        assert small_db.count("P") == 1

    def test_snapshot_is_immutable_copy(self, small_db):
        row = make_tuple("Q", "v")
        small_db.insert(row)
        snapshot = small_db.snapshot()
        small_db.delete(row)
        assert snapshot.contains(row)
        assert not small_db.contains(row)
        assert snapshot.count("Q") == 1

    def test_copy_and_load_from(self, small_db):
        small_db.insert(make_tuple("Q", "v"))
        duplicate = small_db.copy()
        duplicate.insert(make_tuple("Q", "w"))
        assert small_db.count("Q") == 1
        fresh = MemoryDatabase(small_db.schema)
        fresh.load_from(duplicate)
        assert fresh.count("Q") == 2

    def test_insert_all_and_clear(self, small_db):
        inserted = small_db.insert_all(
            [make_tuple("Q", "a"), make_tuple("Q", "a"), make_tuple("Q", "b")]
        )
        assert inserted == 2
        small_db.clear()
        assert small_db.total_count() == 0

    def test_dump_sorted_is_stable(self, small_db):
        small_db.insert(make_tuple("Q", "b"))
        small_db.insert(make_tuple("Q", "a"))
        assert dump_sorted(small_db) == ["Q(a)", "Q(b)"]

    def test_more_specific_tuples_uses_index_and_matches_default(self, small_db):
        null_one = LabeledNull("n1")
        null_two = LabeledNull("n2")
        rows = [
            make_tuple("P", "x", "y"),
            make_tuple("P", "x", "z"),
            make_tuple("P", "w", "y"),
            Tuple("P", ("x", null_one)),
        ]
        for row in rows:
            small_db.insert(row)
        pattern = Tuple("P", ("x", null_two))
        indexed = small_db.more_specific_tuples(pattern)
        default = DatabaseView.more_specific_tuples(small_db, pattern)
        assert set(indexed) == set(default)
        # All three x-rows qualify (reflexively including the null variant);
        # the w-row must have been pruned by the position index.
        assert set(indexed) == {rows[0], rows[1], rows[3]}

    def test_more_specific_tuples_all_null_pattern_falls_back_to_relation(self, small_db):
        rows = [make_tuple("P", "x", "y"), make_tuple("P", "w", "z")]
        for row in rows:
            small_db.insert(row)
        pattern = Tuple("P", (LabeledNull("a1"), LabeledNull("a2")))
        assert set(small_db.more_specific_tuples(pattern)) == set(rows)

    def test_more_specific_tuples_no_constant_match_is_empty(self, small_db):
        small_db.insert(make_tuple("P", "x", "y"))
        pattern = Tuple("P", ("absent", LabeledNull("b1")))
        assert small_db.more_specific_tuples(pattern) == []

    def test_more_specific_tuples_repeated_null_consistency(self, small_db):
        # P(v, v) is more specific than P(n, n); P(v, u) is not (the map on
        # the repeated null would be inconsistent).  The index intersection
        # must not short-circuit that check.
        small_db.insert(make_tuple("P", "v", "v"))
        small_db.insert(make_tuple("P", "v", "u"))
        shared = LabeledNull("c1")
        pattern = Tuple("P", (shared, shared))
        assert set(small_db.more_specific_tuples(pattern)) == {make_tuple("P", "v", "v")}


class TestPositionIndex:
    def test_add_remove_lookup(self):
        index = PositionIndex()
        row = make_tuple("P", "x", LabeledNull("n"))
        index.add(row)
        assert index.lookup("P", 0, Constant("x")) == {row}
        assert index.with_null(LabeledNull("n")) == {row}
        index.remove(row)
        assert index.lookup("P", 0, Constant("x")) == set()
        assert index.with_null(LabeledNull("n")) == set()
        assert len(index) == 0

    def test_remove_missing_row_is_noop(self):
        index = PositionIndex()
        index.remove(make_tuple("P", "x", "y"))

    def test_rebuild(self):
        index = PositionIndex()
        rows = [make_tuple("P", "a", "b"), make_tuple("P", "c", "d")]
        index.rebuild(rows)
        assert index.lookup("P", 1, Constant("d")) == {rows[1]}


class TestOverlayViews:
    def test_overlay_adds_and_hides(self, travel_db):
        added = make_tuple("C", "NYC")
        hidden = make_tuple("C", "Ithaca")
        view = OverlayView(travel_db, added={added}, hidden={hidden})
        cities = set(view.tuples("C"))
        assert added in cities and hidden not in cities
        assert view.contains(added)
        assert not view.contains(hidden)
        assert view.count("C") == 2

    def test_view_without_insert_hides_the_row(self, travel_db):
        row = make_tuple("C", "NYC")
        travel_db.insert(row)
        view = view_without_write(travel_db, insert(row))
        assert not view.contains(row)
        assert travel_db.contains(row)

    def test_view_without_delete_restores_the_row(self, travel_db):
        row = make_tuple("C", "Ithaca")
        travel_db.delete(row)
        view = view_without_write(travel_db, delete(row))
        assert view.contains(row)

    def test_view_without_modify_restores_old_content(self, travel_db):
        old = make_tuple("C", "Ithaca")
        new = make_tuple("C", "Ithaca NY")
        travel_db.delete(old)
        travel_db.insert(new)
        write = modify(old, new, LabeledNull("z"), Constant("v"))
        view = view_without_write(travel_db, write)
        assert view.contains(old)
        assert not view.contains(new)

    def test_view_with_write_previews_an_insert(self, travel_db):
        row = make_tuple("C", "NYC")
        view = view_with_write(travel_db, insert(row))
        assert view.contains(row)
        assert not travel_db.contains(row)

    def test_indexed_lookups_respect_the_overlay(self, travel_db):
        added = make_tuple("C", "NYC")
        view = OverlayView(travel_db, added={added})
        assert added in set(view.tuples_with_value("C", 0, Constant("NYC")))
        null_row = make_tuple("T", "Niagara Falls", LabeledNull("x1"), "Toronto")
        view = OverlayView(travel_db, hidden={null_row})
        assert null_row not in set(view.tuples_containing_null(LabeledNull("x1")))


# ----------------------------------------------------------------------
# Property test: a sequence of random writes keeps store and model in sync.
# ----------------------------------------------------------------------
_operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.sampled_from(["P", "Q"]),
        st.sampled_from(["a", "b", "c"]),
        st.sampled_from(["a", "b", "c"]),
    ),
    max_size=30,
)


@settings(max_examples=50, deadline=None)
@given(_operations)
def test_memory_database_matches_a_python_set_model(operations):
    schema = DatabaseSchema.from_dict({"P": ["a", "b"], "Q": ["a", "b"]})
    database = MemoryDatabase(schema)
    model = {"P": set(), "Q": set()}
    for action, relation, first, second in operations:
        row = make_tuple(relation, first, second)
        if action == "insert":
            database.insert(row)
            model[relation].add(row)
        else:
            database.delete(row)
            model[relation].discard(row)
    for relation in ("P", "Q"):
        assert set(database.tuples(relation)) == model[relation]
        assert database.count(relation) == len(model[relation])
