"""Tests for the multiversion store: visibility, write log, rollback."""

import pytest

from repro.core.schema import DatabaseSchema
from repro.core.terms import Constant, LabeledNull
from repro.core.tuples import make_tuple
from repro.core.writes import delete, insert, modify
from repro.storage.memory import MemoryDatabase
from repro.storage.versioned import LATEST, VersionedDatabase


@pytest.fixture
def store():
    schema = DatabaseSchema.from_dict({"P": ["a"], "Q": ["a", "b"]})
    return VersionedDatabase(schema)


class TestVisibility:
    def test_initial_load_is_visible_to_everyone(self, store):
        initial = MemoryDatabase(store.schema)
        initial.insert(make_tuple("P", "base"))
        store.load_initial(initial.snapshot())
        assert store.view_for(1).contains(make_tuple("P", "base"))
        assert store.view_for(99).contains(make_tuple("P", "base"))
        # The initial load is not attributed to any update.
        assert store.write_log() == []

    def test_writes_visible_only_to_same_or_higher_priorities(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=5)
        assert not store.view_for(4).contains(make_tuple("P", "v"))
        assert store.view_for(5).contains(make_tuple("P", "v"))
        assert store.view_for(6).contains(make_tuple("P", "v"))
        assert store.latest_view().contains(make_tuple("P", "v"))

    def test_deletion_hides_the_tuple_for_higher_priorities_only(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=1)
        store.apply_write(delete(make_tuple("P", "v")), priority=3)
        assert store.view_for(2).contains(make_tuple("P", "v"))
        assert not store.view_for(3).contains(make_tuple("P", "v"))
        assert not store.view_for(10).contains(make_tuple("P", "v"))

    def test_later_version_of_same_update_wins(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=2)
        store.apply_write(delete(make_tuple("P", "v")), priority=2)
        assert not store.view_for(2).contains(make_tuple("P", "v"))

    def test_modification_changes_content_for_viewers(self, store):
        old = make_tuple("Q", LabeledNull("x"), "b")
        new = make_tuple("Q", "filled", "b")
        store.apply_write(insert(old), priority=1)
        store.apply_write(modify(old, new, LabeledNull("x"), Constant("filled")), priority=4)
        assert store.view_for(2).contains(old)
        assert not store.view_for(2).contains(new)
        assert store.view_for(4).contains(new)
        assert not store.view_for(4).contains(old)

    def test_noop_writes_are_not_logged(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=1)
        assert store.apply_write(insert(make_tuple("P", "v")), priority=2) is None
        assert store.apply_write(delete(make_tuple("P", "zzz")), priority=2) is None
        assert len(store.write_log()) == 1

    def test_lower_priority_cannot_delete_invisible_tuple(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=7)
        assert store.apply_write(delete(make_tuple("P", "v")), priority=3) is None

    def test_materialize_freezes_a_view(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=1)
        frozen = store.materialize()
        store.apply_write(delete(make_tuple("P", "v")), priority=2)
        assert frozen.contains(make_tuple("P", "v"))


class TestWriteLogAndRollback:
    def test_write_log_records_priority_and_order(self, store):
        store.apply_write(insert(make_tuple("P", "a")), priority=1)
        store.apply_write(insert(make_tuple("P", "b")), priority=2)
        log = store.write_log()
        assert [entry.priority for entry in log] == [1, 2]
        assert [entry.write.row for entry in log] == [make_tuple("P", "a"), make_tuple("P", "b")]
        assert store.writes_by(2)[0].write.row == make_tuple("P", "b")
        assert store.priorities_in_log() == {1, 2}

    def test_write_log_is_a_copy_free_live_view(self, store):
        view = store.write_log()
        assert len(view) == 0
        store.apply_write(insert(make_tuple("P", "a")), priority=1)
        # The view is a read-only window onto the live log, not a snapshot
        # copy: it sees later appends and rejects mutation.
        assert len(view) == 1
        assert list(view) == list(store.write_log())
        assert view[0].priority == 1
        assert view == store.write_log()
        with pytest.raises(AttributeError):
            view.append("nope")
        # The window stays live across rollback too (the log is mutated in
        # place, not rebound): the rolled-back entry disappears from the
        # previously obtained view as well.
        store.apply_write(insert(make_tuple("P", "b")), priority=2)
        store.rollback(1)
        assert [entry.priority for entry in view] == [2]
        assert view == store.write_log()

    def test_writes_by_is_an_indexed_lookup(self, store):
        store.apply_write(insert(make_tuple("P", "a")), priority=1)
        store.apply_write(insert(make_tuple("P", "b")), priority=2)
        store.apply_write(insert(make_tuple("Q", "c", "d")), priority=2)
        assert [entry.write.row for entry in store.writes_by(2)] == [
            make_tuple("P", "b"),
            make_tuple("Q", "c", "d"),
        ]
        assert store.write_count_by(2) == 2
        assert store.write_count_by(9) == 0
        assert len(store.writes_by(9)) == 0
        assert [e.write.row for e in store.writes_by_touching_relation(2, "Q")] == [
            make_tuple("Q", "c", "d")
        ]
        merged = store.writes_by_touching_relations(2, {"P", "Q"})
        assert [entry.seq for entry in merged] == sorted(entry.seq for entry in merged)
        assert len(merged) == 2

    def test_rollback_removes_versions_and_log_entries(self, store):
        store.apply_write(insert(make_tuple("P", "keep")), priority=1)
        store.apply_write(insert(make_tuple("P", "drop")), priority=2)
        removed = store.rollback(2)
        assert [entry.write.row for entry in removed] == [make_tuple("P", "drop")]
        assert not store.latest_view().contains(make_tuple("P", "drop"))
        assert store.latest_view().contains(make_tuple("P", "keep"))
        assert store.priorities_in_log() == {1}

    def test_rollback_of_a_delete_restores_visibility(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=1)
        store.apply_write(delete(make_tuple("P", "v")), priority=2)
        assert not store.latest_view().contains(make_tuple("P", "v"))
        store.rollback(2)
        assert store.latest_view().contains(make_tuple("P", "v"))

    def test_rollback_of_unknown_priority_is_noop(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=1)
        assert store.rollback(9) == []
        assert store.latest_view().contains(make_tuple("P", "v"))

    def test_counts(self, store):
        store.apply_write(insert(make_tuple("P", "a")), priority=1)
        store.apply_write(delete(make_tuple("P", "a")), priority=2)
        assert store.tuple_count() == 1
        assert store.version_count() == 2


class TestVersionedView:
    def test_view_reports_schema_and_relations(self, store):
        view = store.view_for(1)
        assert view.schema is store.schema
        assert set(view.relations()) == {"P", "Q"}
        assert view.priority == 1

    def test_unknown_relation_rejected(self, store):
        from repro.core.schema import SchemaError

        with pytest.raises(SchemaError):
            list(store.view_for(1).tuples("Nope"))

    def test_duplicate_contents_collapse_in_iteration(self, store):
        # Two different updates insert the same tuple value (the second one is
        # a no-op only if it can see the first; with a lower priority it cannot).
        store.apply_write(insert(make_tuple("P", "v")), priority=5)
        store.apply_write(insert(make_tuple("P", "v")), priority=3)
        assert list(store.view_for(10).tuples("P")) == [make_tuple("P", "v")]


class TestIndexedCorrectionQueries:
    """The view's indexed correction queries must match the interface defaults.

    The chase-hot queries (``more_specific_tuples``, ``tuples_containing_null``,
    ``tuples_with_value``) are index-accelerated on :class:`VersionedView`;
    the store's indexes over-approximate across versions and rollbacks, so
    these tests exercise modified, deleted and rolled-back tuples at several
    priorities and compare against the scanning defaults.
    """

    @pytest.fixture
    def busy_store(self, store):
        from repro.core.tuples import Tuple

        null = LabeledNull("n1")
        store.apply_write(insert(make_tuple("P", "x")), priority=1)
        store.apply_write(insert(Tuple("Q", ("x", null))), priority=1)
        store.apply_write(insert(make_tuple("Q", "x", "y")), priority=2)
        store.apply_write(
            modify(Tuple("Q", ("x", null)), make_tuple("Q", "x", "z"), null, Constant("z")),
            priority=3,
        )
        store.apply_write(insert(make_tuple("Q", "w", "y")), priority=4)
        store.apply_write(delete(make_tuple("Q", "x", "y")), priority=5)
        store.apply_write(insert(make_tuple("Q", "x", "rolled")), priority=6)
        store.rollback(6)
        return store, null

    def _assert_matches_defaults(self, view, pattern, null):
        from repro.storage.interface import DatabaseView

        assert set(view.more_specific_tuples(pattern)) == set(
            DatabaseView.more_specific_tuples(view, pattern)
        )
        assert set(view.tuples_containing_null(null)) == set(
            DatabaseView.tuples_containing_null(view, null)
        )
        for position, value in enumerate(pattern.values):
            if isinstance(value, LabeledNull):
                continue
            assert set(view.tuples_with_value("Q", position, value)) == set(
                DatabaseView.tuples_with_value(view, "Q", position, value)
            )

    def test_indexed_queries_match_defaults_at_every_priority(self, busy_store):
        from repro.core.tuples import Tuple

        store, null = busy_store
        pattern = Tuple("Q", (Constant("x"), LabeledNull("probe")))
        for priority in (0, 1, 2, 3, 4, 5, 6, LATEST):
            self._assert_matches_defaults(store.view_for(priority), pattern, null)

    def test_all_null_pattern_matches_default(self, busy_store):
        from repro.core.tuples import Tuple
        from repro.storage.interface import DatabaseView

        store, _ = busy_store
        pattern = Tuple("Q", (LabeledNull("a"), LabeledNull("b")))
        view = store.view_for(LATEST)
        assert set(view.more_specific_tuples(pattern)) == set(
            DatabaseView.more_specific_tuples(view, pattern)
        )

    def test_rolled_back_tuples_never_surface(self, busy_store):
        from repro.core.tuples import Tuple

        store, _ = busy_store
        view = store.view_for(LATEST)
        pattern = Tuple("Q", (Constant("x"), LabeledNull("p")))
        assert make_tuple("Q", "x", "rolled") not in view.more_specific_tuples(pattern)

    def test_rollback_purges_index_entries_of_dead_tids(self, store):
        from repro.core.tuples import Tuple

        null = LabeledNull("gone")
        store.apply_write(insert(Tuple("Q", ("a", null))), priority=7)
        assert store._value_index.get(("Q", 0, Constant("a")))
        assert store._null_index.get(null)
        store.rollback(7)
        # The identity died with the rollback; an abort-heavy service must
        # not accumulate dead tids (or dead keys) in the hot-path buckets.
        assert ("Q", 0, Constant("a")) not in store._value_index
        assert null not in store._null_index
