"""Tests for the multiversion store: visibility, write log, rollback."""

import pytest

from repro.core.schema import DatabaseSchema
from repro.core.terms import Constant, LabeledNull
from repro.core.tuples import make_tuple
from repro.core.writes import delete, insert, modify
from repro.storage.memory import MemoryDatabase
from repro.storage.versioned import LATEST, VersionedDatabase


@pytest.fixture
def store():
    schema = DatabaseSchema.from_dict({"P": ["a"], "Q": ["a", "b"]})
    return VersionedDatabase(schema)


class TestVisibility:
    def test_initial_load_is_visible_to_everyone(self, store):
        initial = MemoryDatabase(store.schema)
        initial.insert(make_tuple("P", "base"))
        store.load_initial(initial.snapshot())
        assert store.view_for(1).contains(make_tuple("P", "base"))
        assert store.view_for(99).contains(make_tuple("P", "base"))
        # The initial load is not attributed to any update.
        assert store.write_log() == []

    def test_writes_visible_only_to_same_or_higher_priorities(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=5)
        assert not store.view_for(4).contains(make_tuple("P", "v"))
        assert store.view_for(5).contains(make_tuple("P", "v"))
        assert store.view_for(6).contains(make_tuple("P", "v"))
        assert store.latest_view().contains(make_tuple("P", "v"))

    def test_deletion_hides_the_tuple_for_higher_priorities_only(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=1)
        store.apply_write(delete(make_tuple("P", "v")), priority=3)
        assert store.view_for(2).contains(make_tuple("P", "v"))
        assert not store.view_for(3).contains(make_tuple("P", "v"))
        assert not store.view_for(10).contains(make_tuple("P", "v"))

    def test_later_version_of_same_update_wins(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=2)
        store.apply_write(delete(make_tuple("P", "v")), priority=2)
        assert not store.view_for(2).contains(make_tuple("P", "v"))

    def test_modification_changes_content_for_viewers(self, store):
        old = make_tuple("Q", LabeledNull("x"), "b")
        new = make_tuple("Q", "filled", "b")
        store.apply_write(insert(old), priority=1)
        store.apply_write(modify(old, new, LabeledNull("x"), Constant("filled")), priority=4)
        assert store.view_for(2).contains(old)
        assert not store.view_for(2).contains(new)
        assert store.view_for(4).contains(new)
        assert not store.view_for(4).contains(old)

    def test_noop_writes_are_not_logged(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=1)
        assert store.apply_write(insert(make_tuple("P", "v")), priority=2) is None
        assert store.apply_write(delete(make_tuple("P", "zzz")), priority=2) is None
        assert len(store.write_log()) == 1

    def test_lower_priority_cannot_delete_invisible_tuple(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=7)
        assert store.apply_write(delete(make_tuple("P", "v")), priority=3) is None

    def test_materialize_freezes_a_view(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=1)
        frozen = store.materialize()
        store.apply_write(delete(make_tuple("P", "v")), priority=2)
        assert frozen.contains(make_tuple("P", "v"))


class TestWriteLogAndRollback:
    def test_write_log_records_priority_and_order(self, store):
        store.apply_write(insert(make_tuple("P", "a")), priority=1)
        store.apply_write(insert(make_tuple("P", "b")), priority=2)
        log = store.write_log()
        assert [entry.priority for entry in log] == [1, 2]
        assert [entry.write.row for entry in log] == [make_tuple("P", "a"), make_tuple("P", "b")]
        assert store.writes_by(2)[0].write.row == make_tuple("P", "b")
        assert store.priorities_in_log() == {1, 2}

    def test_rollback_removes_versions_and_log_entries(self, store):
        store.apply_write(insert(make_tuple("P", "keep")), priority=1)
        store.apply_write(insert(make_tuple("P", "drop")), priority=2)
        removed = store.rollback(2)
        assert [entry.write.row for entry in removed] == [make_tuple("P", "drop")]
        assert not store.latest_view().contains(make_tuple("P", "drop"))
        assert store.latest_view().contains(make_tuple("P", "keep"))
        assert store.priorities_in_log() == {1}

    def test_rollback_of_a_delete_restores_visibility(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=1)
        store.apply_write(delete(make_tuple("P", "v")), priority=2)
        assert not store.latest_view().contains(make_tuple("P", "v"))
        store.rollback(2)
        assert store.latest_view().contains(make_tuple("P", "v"))

    def test_rollback_of_unknown_priority_is_noop(self, store):
        store.apply_write(insert(make_tuple("P", "v")), priority=1)
        assert store.rollback(9) == []
        assert store.latest_view().contains(make_tuple("P", "v"))

    def test_counts(self, store):
        store.apply_write(insert(make_tuple("P", "a")), priority=1)
        store.apply_write(delete(make_tuple("P", "a")), priority=2)
        assert store.tuple_count() == 1
        assert store.version_count() == 2


class TestVersionedView:
    def test_view_reports_schema_and_relations(self, store):
        view = store.view_for(1)
        assert view.schema is store.schema
        assert set(view.relations()) == {"P", "Q"}
        assert view.priority == 1

    def test_unknown_relation_rejected(self, store):
        from repro.core.schema import SchemaError

        with pytest.raises(SchemaError):
            list(store.view_for(1).tuples("Nope"))

    def test_duplicate_contents_collapse_in_iteration(self, store):
        # Two different updates insert the same tuple value (the second one is
        # a no-op only if it can see the first; with a lower priority it cannot).
        store.apply_write(insert(make_tuple("P", "v")), priority=5)
        store.apply_write(insert(make_tuple("P", "v")), priority=3)
        assert list(store.view_for(10).tuples("P")) == [make_tuple("P", "v")]
