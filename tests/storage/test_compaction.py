"""Property-style tests for write-log compaction and content-index pruning.

A random driver interleaves writes at increasing priorities, rollbacks and
commit-watermark compactions, mimicking the optimistic scheduler's lifecycle.
After every mutation the store must satisfy two exact invariants:

* **visibility** — for every still-live priority, the indexed visibility
  answers (``contains``, ``more_specific_tuples``, ``tuples_containing_null``,
  ``tuples_with_value``) equal brute-force recomputation over the relation
  scan (the :class:`DatabaseView` defaults), and compaction never changes the
  set of tuples such a priority sees;
* **index justification** — every entry of the over-approximate content
  indexes is justified by some remaining version, and every remaining
  version's content is fully indexed.  Together these bound the indexes by
  the live version set: neither rollbacks nor compactions may leave residue,
  or a long-running service grows garbage without bound.
"""

import random

import pytest

from repro.core.schema import DatabaseSchema
from repro.core.terms import Constant, LabeledNull
from repro.core.tuples import Tuple
from repro.core.writes import delete, insert, modify
from repro.storage.interface import DatabaseView
from repro.storage.versioned import LATEST, VersionedDatabase


def _assert_indexes_exact(store):
    """Both directions: indexed ⊆ justified and stored ⊆ indexed."""
    for (relation, position, value), bucket in store._value_index.items():
        for tid in bucket:
            record = store._tuples.get(tid)
            assert record is not None, "value-index bucket holds a dead tid"
            assert any(
                version.content is not None
                and version.content.relation == relation
                and version.content.values[position] == value
                for version in record.versions
            ), "value-index entry not justified by any remaining version"
    for null, bucket in store._null_index.items():
        for tid in bucket:
            record = store._tuples.get(tid)
            assert record is not None, "null-index bucket holds a dead tid"
            assert any(
                version.content is not None and version.content.contains_null(null)
                for version in record.versions
            ), "null-index entry not justified by any remaining version"
    for tid, record in store._tuples.items():
        for version in record.versions:
            row = version.content
            if row is None:
                continue
            for position, value in enumerate(row.values):
                assert tid in store._value_index.get((row.relation, position, value), ())
            for null in row.null_set():
                assert tid in store._null_index.get(null, ())


def _assert_view_matches_bruteforce(store, priority, probe_rows, probe_nulls):
    view = store.view_for(priority)
    for relation in view.relations():
        scanned = set(view.tuples(relation))
        for row in scanned:
            assert view.contains(row)
    for row in probe_rows:
        expected = any(row == content for content in view.tuples(row.relation))
        assert view.contains(row) == expected
        pattern = Tuple(
            row.relation,
            tuple(
                value if index == 0 else LabeledNull("probe{}".format(index))
                for index, value in enumerate(row.values)
            ),
        )
        assert set(view.more_specific_tuples(pattern)) == set(
            DatabaseView.more_specific_tuples(view, pattern)
        )
        if row.values:
            assert set(view.tuples_with_value(row.relation, 0, row.values[0])) == set(
                DatabaseView.tuples_with_value(view, row.relation, 0, row.values[0])
            )
    for null in probe_nulls:
        assert set(view.tuples_containing_null(null)) == set(
            DatabaseView.tuples_containing_null(view, null)
        )


def _random_row(rng, schema, nulls):
    relation = rng.choice(schema.relation_names())
    values = []
    for index in range(schema.arity_of(relation)):
        if rng.random() < 0.25:
            values.append(rng.choice(nulls))
        else:
            values.append(Constant("c{}".format(rng.randrange(6))))
    return Tuple(relation, tuple(values))


@pytest.mark.parametrize("seed", [3, 11, 2009])
def test_random_lifecycle_preserves_visibility_and_prunes_indexes(seed):
    rng = random.Random(seed)
    schema = DatabaseSchema.from_dict({"R": ["a", "b"], "S": ["a"], "T": ["a", "b", "c"]})
    store = VersionedDatabase(schema)
    nulls = [LabeledNull("x{}".format(index)) for index in range(4)]

    active = []  # priorities that may still write, read, or roll back
    next_priority = 1
    watermark = 0
    probe_rows = []

    for step in range(240):
        choice = rng.random()
        if choice < 0.55 or not active:
            # A write by an active (or freshly admitted) priority.
            if not active or rng.random() < 0.3:
                active.append(next_priority)
                next_priority += 1
            priority = rng.choice(active)
            row = _random_row(rng, schema, nulls)
            kind = rng.random()
            if kind < 0.6:
                store.apply_write(insert(row), priority)
                probe_rows.append(row)
            elif kind < 0.8:
                visible = list(store.view_for(priority).tuples(row.relation))
                if visible:
                    store.apply_write(delete(rng.choice(visible)), priority)
            else:
                visible = [
                    candidate
                    for candidate in store.view_for(priority).tuples(row.relation)
                    if candidate.null_set()
                ]
                if visible:
                    old = rng.choice(visible)
                    null = sorted(old.null_set(), key=lambda n: n.name)[0]
                    new = old.substitute({null: Constant("filled{}".format(step))})
                    store.apply_write(modify(old, new, null, new.values[0]), priority)
                    probe_rows.append(new)
        elif choice < 0.7 and active:
            # Abort: roll a random active priority back.
            victim = rng.choice(active)
            active.remove(victim)
            store.rollback(victim)
        elif choice < 0.85 and active:
            # Commit a prefix of the active priorities and compact below it,
            # exactly like the scheduler's commit watermark.
            committed = sorted(active)[: rng.randrange(1, len(active) + 1)]
            watermark = committed[-1]
            for priority in committed:
                active.remove(priority)
            survivors = [priority for priority in active if priority > watermark]
            before = {
                priority: {
                    relation: frozenset(store.view_for(priority).tuples(relation))
                    for relation in schema.relation_names()
                }
                for priority in survivors + [watermark]
            }
            store.compact_below(watermark, committed)
            for priority, relations in before.items():
                after = {
                    relation: frozenset(store.view_for(priority).tuples(relation))
                    for relation in schema.relation_names()
                }
                assert after == relations, (
                    "compaction changed visibility for priority {}".format(priority)
                )
            # Committed log entries must be gone.
            for priority in committed:
                assert len(store.writes_by(priority)) == 0
            assert all(p > watermark for p in store.priorities_in_log())

        if step % 20 == 0:
            _assert_indexes_exact(store)
            sample = rng.sample(probe_rows, min(len(probe_rows), 8)) if probe_rows else []
            for priority in list(active[:3]) + [watermark, LATEST]:
                _assert_view_matches_bruteforce(store, priority, sample, nulls)

    _assert_indexes_exact(store)
    for priority in [watermark, next_priority, LATEST]:
        _assert_view_matches_bruteforce(
            store, priority, probe_rows[-10:], nulls
        )


def test_compaction_collapses_committed_chains_and_drops_tombstones():
    schema = DatabaseSchema.from_dict({"P": ["a"]})
    store = VersionedDatabase(schema)
    null = LabeledNull("n")
    first = Tuple("P", (null,))
    filled = Tuple("P", (Constant("v"),))
    store.apply_write(insert(first), priority=1)
    store.apply_write(modify(first, filled, null, Constant("v")), priority=2)
    store.apply_write(insert(Tuple("P", (Constant("dead"),))), priority=2)
    store.apply_write(delete(Tuple("P", (Constant("dead"),))), priority=3)
    assert store.version_count() == 4
    removed = store.compact_below(3)
    # The modified chain collapses to one version; the deleted identity (and
    # its tombstone) disappears entirely, indexes pruned with it.
    assert removed == 3
    assert store.version_count() == 1
    assert store.log_size() == 0
    assert list(store.view_for(5).tuples("P")) == [filled]
    assert ("P", 0, Constant("dead")) not in store._value_index
    assert null not in store._null_index
    _assert_indexes_exact(store)


def test_compaction_keeps_committed_state_under_uncommitted_versions():
    schema = DatabaseSchema.from_dict({"P": ["a"]})
    store = VersionedDatabase(schema)
    row = Tuple("P", (Constant("v"),))
    store.apply_write(insert(row), priority=1)
    store.apply_write(delete(row), priority=2)
    # Priority 4 re-inserts after the committed delete (a separate identity).
    store.apply_write(insert(row), priority=4)
    store.compact_below(2, [1, 2])
    # The committed tombstone's identity is gone, but priority-4 state stays.
    assert not store.view_for(2).contains(row)
    assert store.view_for(4).contains(row)
    assert store.view_for(3).contains(row) is False
    assert store.priorities_in_log() == {4}
    _assert_indexes_exact(store)


def test_rollback_prunes_partial_version_residue():
    schema = DatabaseSchema.from_dict({"Q": ["a", "b"]})
    store = VersionedDatabase(schema)
    null = LabeledNull("m")
    old = Tuple("Q", (Constant("k"), null))
    new = Tuple("Q", (Constant("k"), Constant("filled")))
    store.apply_write(insert(old), priority=1)
    store.apply_write(modify(old, new, null, Constant("filled")), priority=5)
    assert ("Q", 1, Constant("filled")) in store._value_index
    store.rollback(5)
    # The modification's content must leave the indexes (the surviving
    # version does not justify it), while the shared first-position value
    # stays (justified by the remaining version).
    assert ("Q", 1, Constant("filled")) not in store._value_index
    assert ("Q", 0, Constant("k")) in store._value_index
    assert null in store._null_index
    _assert_indexes_exact(store)
