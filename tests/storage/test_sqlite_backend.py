"""Tests for the SQLite backend as a full MutableDatabase and chase substrate."""

import pytest

from repro.core import ChaseEngine, DeleteOperation, InsertOperation, ScriptedOracle, satisfies_all
from repro.core.frontier import DeleteSubsetOperation, NegativeFrontierRequest
from repro.core.terms import Constant, LabeledNull
from repro.core.tuples import make_tuple
from repro.fixtures import travel_mappings, travel_schema, travel_tuples
from repro.storage.sqlite_backend import SQLiteDatabase


@pytest.fixture
def sqlite_travel():
    database = SQLiteDatabase(travel_schema())
    for row in travel_tuples():
        database.insert(row)
    yield database
    database.close()


class TestMutableDatabaseConformance:
    def test_insert_contains_delete(self, sqlite_travel):
        row = make_tuple("C", "NYC")
        assert sqlite_travel.insert(row)
        assert not sqlite_travel.insert(row)
        assert sqlite_travel.contains(row)
        assert sqlite_travel.delete(row)
        assert not sqlite_travel.delete(row)
        assert not sqlite_travel.contains(row)

    def test_counts_and_iteration(self, sqlite_travel):
        assert sqlite_travel.count("C") == 2
        assert set(sqlite_travel.tuples("C")) == {
            make_tuple("C", "Ithaca"),
            make_tuple("C", "Syracuse"),
        }

    def test_indexed_lookup(self, sqlite_travel):
        found = set(sqlite_travel.tuples_with_value("C", 0, Constant("Ithaca")))
        assert found == {make_tuple("C", "Ithaca")}

    def test_replace_null(self, sqlite_travel):
        modified = sqlite_travel.replace_null(LabeledNull("x1"), Constant("ABC Tours"))
        assert make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto") in modified
        assert sqlite_travel.contains(
            make_tuple("R", "ABC Tours", "Niagara Falls", LabeledNull("x2"))
        )
        assert not any(
            row.contains_null(LabeledNull("x1"))
            for relation in sqlite_travel.relations()
            for row in sqlite_travel.tuples(relation)
        )

    def test_snapshot(self, sqlite_travel):
        snapshot = sqlite_travel.snapshot()
        sqlite_travel.delete(make_tuple("C", "Ithaca"))
        assert snapshot.contains(make_tuple("C", "Ithaca"))

    def test_schema_validation(self, sqlite_travel):
        from repro.core.schema import SchemaError

        with pytest.raises(SchemaError):
            sqlite_travel.insert(make_tuple("Nope", "x"))
        with pytest.raises(SchemaError):
            list(sqlite_travel.tuples("Nope"))


class TestChaseOnSQLite:
    """The chase engine runs unchanged on the SQLite backend."""

    def test_example_1_1_on_sqlite(self, sqlite_travel):
        mappings = travel_mappings()
        engine = ChaseEngine(sqlite_travel, mappings)
        record = engine.run(
            InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))
        )
        assert record.terminated
        assert satisfies_all(mappings, sqlite_travel)
        generated = [
            row
            for row in sqlite_travel.tuples("R")
            if row.values[0] == Constant("ABC Tours")
        ]
        assert len(generated) == 1
        assert generated[0].values[2].is_null

    def test_backward_chase_on_sqlite(self, sqlite_travel):
        mappings = travel_mappings()

        def choose_tour(request, view):
            assert isinstance(request, NegativeFrontierRequest)
            for candidate in request.candidates:
                if candidate.relation == "T":
                    return DeleteSubsetOperation((candidate,))
            return DeleteSubsetOperation((request.candidates[0],))

        engine = ChaseEngine(sqlite_travel, mappings, oracle=ScriptedOracle([choose_tour]))
        record = engine.run(
            DeleteOperation(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
        )
        assert record.terminated
        assert not sqlite_travel.contains(make_tuple("T", "Geneva Winery", "XYZ", "Syracuse"))
        assert satisfies_all(mappings, sqlite_travel)
