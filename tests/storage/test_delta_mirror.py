"""Differential tests for the DeltaMirror's incremental synchronization.

Under randomized commit/rollback/compaction histories over the multiversion
store, the mirror's shadow tables must stay equal to a mirror rebuilt from
scratch with ``SQLiteDatabase.load_from`` on the committed view, and
``delta_for(j)`` applied on top must reconstruct every reader's view exactly.
The scheduler and the service must behave bit-identically with the SQL chase
on or off.
"""

import random

import pytest

from repro.concurrency import OptimisticScheduler, PreciseTracker
from repro.core import DeleteOperation, InsertOperation, RandomOracle, make_tuple
from repro.core.terms import LabeledNull
from repro.core.tuples import Tuple
from repro.core.writes import delete, insert
from repro.fixtures import travel_database, travel_mappings
from repro.service import RepositoryService
from repro.storage.memory import MemoryDatabase
from repro.storage.mirror import DeltaMirror
from repro.storage.sqlite_backend import SQLiteDatabase
from repro.storage.versioned import VersionedDatabase
from repro.workload.mapping_gen import generate_mappings
from repro.workload.schema_gen import generate_constant_pool, generate_schema


def _random_row(schema, pool, rng, null_density=0.2):
    relation = rng.choice(schema.relation_names())
    values = [
        LabeledNull("n{}".format(rng.randint(1, 4)))
        if rng.random() < null_density
        else rng.choice(pool)
        for _ in range(schema.arity_of(relation))
    ]
    return Tuple(relation, values)


def _assert_mirror_matches_rebuild(mirror, store, watermark):
    """The incrementally synced shadow == a load_from-rebuilt shadow."""
    mirror.sync()
    rebuilt = SQLiteDatabase(store.schema)
    rebuilt.load_from(store.view_for(watermark))
    try:
        for relation in store.schema.relation_names():
            assert mirror.mirrored_rows(relation) == frozenset(
                rebuilt.tuples(relation)
            ), relation
    finally:
        rebuilt.close()


def _assert_delta_reconstructs(mirror, store, priority):
    """mirror contents +/- delta_for(priority) == the reader's view."""
    view = store.view_for(priority)
    delta = mirror.delta_for(priority)
    for relation in store.schema.relation_names():
        reconstructed = set(mirror.mirrored_rows(relation))
        removed, added = delta.get(relation, ((), ()))
        for row in removed:
            reconstructed.discard(row)
        for row in added:
            reconstructed.add(row)
        assert reconstructed == set(view.tuples(relation)), relation


class TestRandomizedHistories:
    @pytest.mark.parametrize("seed", [3, 17, 64])
    def test_sync_matches_rebuilt_mirror(self, seed):
        rng = random.Random(seed)
        schema = generate_schema(num_relations=4, max_arity=3, rng=rng)
        pool = generate_constant_pool(size=6, rng=rng)
        initial = MemoryDatabase(schema)
        for _ in range(40):
            initial.insert(_random_row(schema, pool, rng))
        store = VersionedDatabase(schema)
        store.load_initial(initial.snapshot())
        mirror = DeltaMirror(schema)
        mirror.attach_store(store)

        watermark = 0
        in_flight = []
        for priority in range(1, 13):
            writes = []
            for _ in range(rng.randint(1, 4)):
                visible = list(
                    store.view_for(priority).tuples(
                        rng.choice(schema.relation_names())
                    )
                )
                if visible and rng.random() < 0.45:
                    writes.append(delete(rng.choice(visible)))
                else:
                    writes.append(insert(_random_row(schema, pool, rng)))
            store.apply_writes(writes, priority)
            in_flight.append(priority)

            action = rng.random()
            if action < 0.35:
                # Commit the oldest in-flight update (the scheduler's
                # watermark discipline: priorities commit as a prefix).
                committed = in_flight.pop(0)
                watermark = committed
                store.compact_below(watermark, [committed])
            elif action < 0.55 and in_flight:
                store.rollback(in_flight.pop())

            _assert_mirror_matches_rebuild(mirror, store, watermark)
            for probe in [watermark] + in_flight:
                _assert_delta_reconstructs(mirror, store, probe)

        # Drain the history: commit everything still in flight.
        while in_flight:
            committed = in_flight.pop(0)
            watermark = committed
            store.compact_below(watermark, [committed])
        _assert_mirror_matches_rebuild(mirror, store, watermark)
        assert mirror.pending_entries() == 0
        assert mirror.syncs > 0
        assert mirror.entries_applied > 0
        mirror.close()

    def test_duplicate_row_values_across_identities(self):
        """Several tuple identities carrying equal values need refcounting."""
        schema = travel_database().schema
        store = VersionedDatabase(schema)
        store.load_initial(travel_database().snapshot())
        mirror = DeltaMirror(schema)
        mirror.attach_store(store)
        row = make_tuple("C", "Ithaca")  # already present in the baseline
        # Delete it at priority 1, re-insert at 2, delete again at 3.
        store.apply_writes([delete(row)], 1)
        store.apply_writes([insert(row)], 2)
        store.apply_writes([delete(row)], 3)
        for probe in (0, 1, 2, 3):
            _assert_delta_reconstructs(mirror, store, probe)
        for committed in (1, 2, 3):
            store.compact_below(committed, [committed])
            _assert_mirror_matches_rebuild(mirror, store, committed)
        mirror.close()

    def test_uncompacted_committed_writes_flow_through_the_delta(self):
        """Correctness must not depend on compaction running at all."""
        schema = travel_database().schema
        store = VersionedDatabase(schema)
        store.load_initial(travel_database().snapshot())
        mirror = DeltaMirror(schema)
        mirror.attach_store(store)
        store.apply_writes(
            [insert(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))], 1
        )
        store.apply_writes(
            [delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))], 2
        )
        # No compact_below: the mirror stays at the initial baseline and the
        # logged writes are picked up per reader from the write log.
        assert mirror.entries_applied == 0
        for probe in (0, 1, 2):
            _assert_delta_reconstructs(mirror, store, probe)
        mirror.close()


def _travel_operations():
    return [
        InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")),
        DeleteOperation(make_tuple("R", "XYZ", "Geneva Winery", "Great!")),
        InsertOperation(make_tuple("A", "Watkins Glen", "Watkins Glen")),
        DeleteOperation(make_tuple("S", "SYR", "Syracuse", "Ithaca")),
    ]


class TestSchedulerDifferential:
    def _run(self, sql_chase):
        database = travel_database()
        store = VersionedDatabase(database.schema)
        store.load_initial(database.snapshot())
        scheduler = OptimisticScheduler(
            store=store,
            mappings=travel_mappings(),
            tracker=PreciseTracker(),
            oracle=RandomOracle(seed=0),
            sql_chase=sql_chase,
        )
        scheduler.submit_all(_travel_operations())
        statistics = scheduler.run()
        contents = {
            relation: frozenset(store.latest_view().tuples(relation))
            for relation in store.schema.relation_names()
        }
        return scheduler, statistics, contents

    def test_on_matches_off_bit_for_bit(self):
        _, off_stats, off_contents = self._run(sql_chase=False)
        scheduler, on_stats, on_contents = self._run(sql_chase=True)
        assert on_contents == off_contents
        for key in (
            "updates_executed",
            "updates_terminated",
            "aborts",
            "direct_aborts",
            "cascading_aborts",
            "cascading_abort_requests",
            "steps",
            "writes",
            "read_queries",
        ):
            assert getattr(on_stats, key) == getattr(off_stats, key), key
        assert scheduler._sql_evaluator is not None
        assert scheduler._sql_evaluator.evaluations > 0
        # The scheduler's mirror rides the store's commit pushes.
        assert scheduler._chase_mirror.entries_applied > 0

    def test_check_mode_verifies_every_answer(self):
        scheduler, statistics, _ = self._run(sql_chase="check")
        assert statistics.updates_terminated == len(_travel_operations())
        assert scheduler._sql_evaluator.evaluations > 0


class TestServiceSmoke:
    def test_service_runs_under_check_mode(self):
        database = travel_database()
        service = RepositoryService(
            database.snapshot(),
            travel_mappings(),
            tracker="PRECISE",
            sql_chase="check",
        )
        session = service.open_session("alice")
        for operation in _travel_operations():
            service.submit(session.session_id, operation)
        service.pump()
        scheduler = service._scheduler
        assert scheduler._sql_evaluator is not None
        assert scheduler._sql_evaluator.evaluations > 0
