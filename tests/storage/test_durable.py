"""Durable mode: codec-encoded segments + snapshots reproduce the store.

The contract under test: at any moment, ``snapshot_to(path, watermark)`` plus
replaying the surviving write-log segments onto the restored snapshot yields
a store whose every view matches the original — across rollbacks (tombstoned
priorities filtered), commit-time compaction (covered segment files deleted,
watermark recorded) and process "restarts" (a fresh
:class:`~repro.storage.durable.WriteLogSegments` over the same directory).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.schema import DatabaseSchema
from repro.core.terms import Constant, LabeledNull
from repro.core.tuples import Tuple
from repro.core.writes import delete, insert
from repro.storage.durable import WriteLogSegments, read_snapshot, write_snapshot
from repro.storage.interface import dump_sorted
from repro.storage.memory import FrozenDatabase
from repro.storage.versioned import LATEST, VersionedDatabase

SCHEMA = DatabaseSchema.from_dict({"R": ["a", "b"], "S": ["x"]})


def _initial():
    return FrozenDatabase(
        SCHEMA,
        {
            "R": frozenset({Tuple("R", ["r1", "r2"]), Tuple("R", ["r3", LabeledNull("n1")])}),
            "S": frozenset({Tuple("S", ["s1"])}),
        },
    )


def _store(tmp_path, name="segments"):
    store = VersionedDatabase(SCHEMA)
    store.load_initial(_initial())
    segments = WriteLogSegments(str(tmp_path / name), max_entries_per_segment=4)
    store.attach_segments(segments)
    return store, segments


def _replay_onto(snapshot_path, segments_dir):
    """A 'restarted process': restore the snapshot, replay fresh segments."""
    store, watermark = VersionedDatabase.restore_from(snapshot_path)
    reopened = WriteLogSegments(segments_dir)
    for entry in reopened.replay():
        store.apply_write(entry.write, entry.priority)
    return store, watermark


def _same_contents(a, b, priority=LATEST):
    return dump_sorted(a.view_for(priority)) == dump_sorted(b.view_for(priority))


def test_snapshot_round_trip():
    import tempfile

    path = os.path.join(tempfile.mkdtemp(), "snap.json")
    store = VersionedDatabase(SCHEMA)
    store.load_initial(_initial())
    store.apply_write(insert(Tuple("S", ["s2"])), priority=1)
    store.snapshot_to(path, 1)
    schema, frozen, watermark = read_snapshot(path)
    assert watermark == 1
    assert schema.relation_names() == SCHEMA.relation_names()
    assert set(frozen.tuples("S")) == {Tuple("S", ["s1"]), Tuple("S", ["s2"])}
    restored, restored_watermark = VersionedDatabase.restore_from(path)
    assert restored_watermark == 1
    assert dump_sorted(restored.latest_view()) == dump_sorted(store.view_for(1))


def test_segments_replay_applied_writes(tmp_path):
    store, _ = _store(tmp_path)
    store.apply_writes([insert(Tuple("S", ["w1"])), insert(Tuple("S", ["w2"]))], 1)
    store.apply_write(delete(Tuple("S", ["s1"])), 2)
    replayed = WriteLogSegments(str(tmp_path / "segments")).replay()
    assert [entry.write.describe() for entry in replayed] == [
        logged.write.describe() for logged in store.write_log()
    ]
    assert [entry.seq for entry in replayed] == [e.seq for e in store.write_log()]


def test_rollback_tombstones_filter_replay(tmp_path):
    store, _ = _store(tmp_path)
    store.apply_writes([insert(Tuple("S", ["keep"]))], 1)
    store.apply_writes([insert(Tuple("S", ["drop"])), insert(Tuple("R", ["q", "q"]))], 2)
    store.rollback(2)
    replayed = WriteLogSegments(str(tmp_path / "segments")).replay()
    assert {entry.priority for entry in replayed} == {1}


def test_compaction_drops_covered_segments_and_records_watermark(tmp_path):
    store, segments = _store(tmp_path)
    for priority in range(1, 9):
        store.apply_writes([insert(Tuple("S", ["v{}".format(priority)]))], priority)
    before = len(segments.segment_indexes())
    assert before >= 2  # small segments roll over
    store.compact_below(6)
    reopened = WriteLogSegments(str(tmp_path / "segments"))
    assert reopened.watermark == 6
    # Only entries above the watermark replay; covered files are gone.
    assert {entry.priority for entry in reopened.replay()} == {7, 8}
    assert len(reopened.segment_indexes()) < before


@pytest.mark.parametrize("seed", range(5))
def test_randomized_snapshot_plus_replay_reproduces_the_store(tmp_path, seed):
    """The durability contract, differentially, under a random history."""
    rng = random.Random(seed)
    store, _ = _store(tmp_path, name="segments{}".format(seed))
    committed = 0
    live_rows = [Tuple("S", ["s1"])]
    for priority in range(1, 25):
        action = rng.random()
        writes = []
        row = Tuple("S", ["t{}_{}".format(seed, priority)])
        if action < 0.6 or not live_rows:
            writes.append(insert(row))
            live_rows.append(row)
        else:
            victim = rng.choice(live_rows)
            writes.append(delete(victim))
        if rng.random() < 0.3:
            writes.append(insert(Tuple("R", ["r{}".format(priority), row.values[0]])))
        store.apply_writes(writes, priority)
        if rng.random() < 0.2:
            store.rollback(priority)
            if insert(row) in [w for w in writes]:
                if row in live_rows:
                    live_rows.remove(row)
        elif rng.random() < 0.3:
            committed = priority
            store.compact_below(committed)
    snapshot_path = str(tmp_path / "snap{}.json".format(seed))
    # Snapshot at the store's compaction watermark (the service always does).
    store.snapshot_to(snapshot_path, committed)
    rebuilt, _ = _replay_onto(snapshot_path, str(tmp_path / "segments{}".format(seed)))
    assert _same_contents(rebuilt, store)


def test_unknown_segment_version_is_rejected(tmp_path):
    directory = tmp_path / "bad"
    directory.mkdir()
    with open(directory / "segment-00000001.log", "w") as handle:
        handle.write('{"v": 99, "t": "write", "e": {}}\n')
    from repro.codec import CodecError

    with pytest.raises(CodecError, match="unsupported durable-format version"):
        WriteLogSegments(str(directory))


def test_snapshot_file_rejects_wrong_kind(tmp_path):
    from repro.codec import CodecError
    from repro.codec.wire import dumps

    path = tmp_path / "notsnap.json"
    path.write_bytes(dumps({"v": 1, "t": "something-else"}) + b"\n")
    with pytest.raises(CodecError, match="not a snapshot file"):
        read_snapshot(str(path))
