"""Bulk write paths: extend_log ≡ per-row appends, PositionIndex bulk ops.

The bulk APIs exist for throughput only; these tests pin them to the per-row
paths they replace — same log contents, same indexes, same counters.
"""

from __future__ import annotations

import random

from repro.core.schema import DatabaseSchema
from repro.core.terms import Constant, LabeledNull
from repro.core.tuples import Tuple, make_tuple
from repro.core.writes import delete, insert
from repro.storage.index import PositionIndex
from repro.storage.memory import MemoryDatabase
from repro.storage.overlay import OverlayView
from repro.storage.versioned import VersionedDatabase

SCHEMA = DatabaseSchema.from_dict({"P": ["x", "y"], "Q": ["x"]})


def _random_writes(rng, count):
    writes = []
    live = []
    for _ in range(count):
        roll = rng.random()
        if live and roll < 0.3:
            writes.append(delete(live.pop(rng.randrange(len(live)))))
        elif roll < 0.8:
            row = Tuple(
                "P",
                (
                    Constant("c{}".format(rng.randrange(6))),
                    LabeledNull("n{}".format(rng.randrange(4)))
                    if rng.random() < 0.4
                    else Constant("d{}".format(rng.randrange(6))),
                ),
            )
            writes.append(insert(row))
            live.append(row)
        else:
            row = make_tuple("Q", "q{}".format(rng.randrange(8)))
            writes.append(insert(row))
            live.append(row)
    return writes


class TestExtendLog:
    def test_apply_writes_equals_per_write_application(self):
        for seed in range(6):
            rng = random.Random(seed)
            bulk_store = VersionedDatabase(SCHEMA)
            row_store = VersionedDatabase(SCHEMA)
            for priority in (1, 2, 3):
                writes = _random_writes(rng, rng.randrange(1, 12))
                bulk_logged = bulk_store.apply_writes(writes, priority)
                row_logged = [
                    logged
                    for logged in (
                        row_store.apply_write(write, priority) for write in writes
                    )
                    if logged is not None
                ]
                assert [e.write for e in bulk_logged] == [e.write for e in row_logged]
                assert [e.seq for e in bulk_logged] == [e.seq for e in row_logged]
            # Same global log, same per-priority buckets, same positions.
            assert [e.write for e in bulk_store.write_log()] == [
                e.write for e in row_store.write_log()
            ]
            for priority in (1, 2, 3):
                assert list(bulk_store.writes_by(priority)) == list(
                    row_store.writes_by(priority)
                )
                for entry in bulk_store.writes_by(priority):
                    assert bulk_store.log_position(
                        priority, entry.seq
                    ) == row_store.log_position(priority, entry.seq)
            # Same visible contents and index sizes.
            assert (
                bulk_store.latest_view().to_dict() == row_store.latest_view().to_dict()
            )
            assert bulk_store.index_entry_count() == row_store.index_entry_count()

    def test_extend_log_groups_relation_and_null_buckets(self):
        store = VersionedDatabase(SCHEMA)
        null = LabeledNull("n0")
        writes = [
            insert(Tuple("P", (Constant("a"), null))),
            insert(make_tuple("Q", "b")),
            insert(Tuple("P", (Constant("c"), Constant("d")))),
        ]
        logged = store.apply_writes(writes, 1)
        assert len(logged) == 3
        assert [e.write.relation for e in store.writes_by_touching_relation(1, "P")] == [
            "P",
            "P",
        ]
        assert len(store.writes_by_touching_relation(1, "Q")) == 1
        assert [e.write for e in store.writes_by_touching_null(1, null)] == [writes[0]]

    def test_failing_batch_keeps_applied_writes_rollbackable(self):
        # Regression: a write failing mid-batch must not leave the earlier
        # applied versions unlogged — rollback() undoes through the log.
        import pytest
        from repro.core.writes import Write, WriteKind

        store = VersionedDatabase(SCHEMA)
        good = insert(make_tuple("Q", "ok"))
        bad = Write(WriteKind.MODIFY, make_tuple("Q", "new"))  # old_row missing
        with pytest.raises(Exception):
            store.apply_writes([good, bad], 1)
        assert store.latest_view().contains(make_tuple("Q", "ok"))
        assert len(store.writes_by(1)) == 1  # the applied write is logged
        removed = store.rollback(1)
        assert len(removed) == 1
        assert not store.latest_view().contains(make_tuple("Q", "ok"))

    def test_rollback_after_bulk_apply_is_clean(self):
        store = VersionedDatabase(SCHEMA)
        store.apply_writes(
            [insert(make_tuple("Q", "keep"))], 1
        )
        store.apply_writes(
            [insert(make_tuple("Q", "drop1")), insert(make_tuple("Q", "drop2"))], 2
        )
        removed = store.rollback(2)
        assert len(removed) == 2
        assert store.latest_view().to_dict()["Q"] == frozenset(
            {make_tuple("Q", "keep")}
        )
        assert store.log_size() == 1


class TestPositionIndexBulk:
    def test_len_is_a_running_row_count(self):
        index = PositionIndex()
        rows = [make_tuple("P", "a", "b"), make_tuple("P", "a", "c")]
        index.add(rows[0])
        assert len(index) == 1
        index.add(rows[0])  # idempotent
        assert len(index) == 1
        index.add(rows[1])
        assert len(index) == 2
        index.remove(rows[0])
        assert len(index) == 1
        index.remove(rows[0])  # no-op
        assert len(index) == 1
        index.remove(rows[1])
        assert len(index) == 0

    def test_add_many_matches_per_row_adds(self):
        rng = random.Random(0)
        rows = []
        for _ in range(40):
            rows.append(
                make_tuple(
                    "P", "a{}".format(rng.randrange(5)), "b{}".format(rng.randrange(5))
                )
            )
        bulk, single = PositionIndex(), PositionIndex()
        bulk.add_many(rows)
        for row in rows:
            single.add(row)
        assert len(bulk) == len(single) == len(set(rows))
        for row in set(rows):
            for position in (0, 1):
                assert bulk.lookup("P", position, row[position]) == single.lookup(
                    "P", position, row[position]
                )

    def test_add_many_indexes_nulls(self):
        # Regression: add_many used to build the null groups and drop them —
        # bulk-loaded stores lost their entire null index (and with it
        # tuples_containing_null / replace_null).
        null = LabeledNull("n9")
        row = Tuple("P", (Constant("a"), null))
        index = PositionIndex()
        index.add_many([row])
        assert index.with_null(null) == {row}
        index.rebuild([row])
        assert index.with_null(null) == {row}

    def test_bulk_loaded_memory_database_replaces_nulls(self):
        null = LabeledNull("n1")
        source = MemoryDatabase(SCHEMA)
        source.insert(Tuple("P", (Constant("a"), null)))
        loaded = MemoryDatabase(SCHEMA)
        loaded.load_from(source)
        assert list(loaded.tuples_containing_null(null))
        modified = loaded.replace_null(null, Constant("v"))
        assert modified == [Tuple("P", (Constant("a"), Constant("v")))]

    def test_remove_many(self):
        rows = [make_tuple("P", "a", "b"), make_tuple("P", "c", "d")]
        index = PositionIndex()
        index.add_many(rows)
        index.remove_many(rows)
        assert len(index) == 0
        assert index.lookup("P", 0, Constant("a")) == set()

    def test_rebuild_resets_the_counter(self):
        index = PositionIndex()
        index.add_many([make_tuple("P", "a", "b"), make_tuple("P", "c", "d")])
        index.rebuild([make_tuple("P", "e", "f")])
        assert len(index) == 1


class TestCardinalityEstimates:
    def test_memory_database_estimate_is_exact(self):
        database = MemoryDatabase(SCHEMA)
        assert database.cardinality_estimate("P") == 0
        database.insert(make_tuple("P", "a", "b"))
        assert database.cardinality_estimate("P") == 1
        assert database.snapshot().cardinality_estimate("P") == 1

    def test_versioned_view_estimate_bounds_visible_count(self):
        store = VersionedDatabase(SCHEMA)
        store.apply_writes(
            [insert(make_tuple("Q", "a")), insert(make_tuple("Q", "b"))], 1
        )
        store.apply_write(delete(make_tuple("Q", "a")), 2)
        view = store.latest_view()
        estimate = view.cardinality_estimate("Q")
        assert estimate is not None
        assert estimate >= view.count("Q")

    def test_overlay_estimate_adds_added_rows(self):
        database = MemoryDatabase(SCHEMA)
        database.insert(make_tuple("Q", "a"))
        view = OverlayView(database, added={make_tuple("Q", "b")})
        assert view.cardinality_estimate("Q") == 2


class TestMoreSpecificFastPath:
    def test_stale_index_entries_do_not_leak_into_results(self):
        # Regression: the distinct-null fast path must re-check constants
        # against the *visible* content — the value index over-approximates
        # (a modified tuple stays bucketed under its old first value).
        from repro.core.writes import modify

        store = VersionedDatabase(SCHEMA)
        null = LabeledNull("x")
        old = Tuple("P", (Constant("a"), null))
        store.apply_write(insert(old), 1)
        new = Tuple("P", (Constant("b"), null))
        store.apply_write(modify(old, new, null, Constant("ignored")), 2)
        view = store.latest_view()
        pattern = Tuple("P", (Constant("a"), LabeledNull("free")))
        # R(b, x) is visible but does not match the pattern's constant; the
        # stale (P, 0, 'a') bucket entry must not surface it.
        assert store._value_index.get(("P", 0, Constant("a")))  # stale entry exists
        assert view.more_specific_tuples(pattern) == []
        match_pattern = Tuple("P", (Constant("b"), LabeledNull("free")))
        assert view.more_specific_tuples(match_pattern) == [new]
