"""Tests for the update-exchange service: sessions, admission, inbox, reads."""

import pytest

from repro.core import InsertOperation, OracleError, make_tuple
from repro.core.frontier import UnifyOperation
from repro.fixtures import genealogy_repository, travel_repository
from repro.service import (
    AdmissionConfig,
    AdmissionError,
    RepositoryService,
    SessionError,
    ServiceError,
    TicketStatus,
)


@pytest.fixture
def genealogy_service():
    database, mappings = genealogy_repository()
    return RepositoryService(database.snapshot(), mappings, tracker="PRECISE")


@pytest.fixture
def travel_service():
    database, mappings = travel_repository()
    return RepositoryService(database.snapshot(), mappings, tracker="PRECISE")


def _person_insert(name):
    return InsertOperation(make_tuple("Person", name))


def _unify(question):
    return [
        alternative
        for alternative in question.alternatives()
        if isinstance(alternative, UnifyOperation)
    ][0]


class TestSessions:
    def test_open_and_describe(self, genealogy_service):
        session = genealogy_service.open_session("ada")
        assert session.session_id == 1
        assert genealogy_service.session(1) is session
        assert "ada" in session.describe()

    def test_unknown_and_closed_sessions_are_rejected(self, genealogy_service):
        with pytest.raises(SessionError):
            genealogy_service.session(7)
        session = genealogy_service.open_session("ada")
        genealogy_service.close_session(session.session_id)
        with pytest.raises(SessionError):
            genealogy_service.submit(session.session_id, _person_insert("Ada"))

    def test_sessions_are_listed_in_order(self, genealogy_service):
        names = ["a", "b", "c"]
        for name in names:
            genealogy_service.open_session(name)
        assert [s.name for s in genealogy_service.sessions()] == names


class TestSubmissionAndAdmission:
    def test_submit_queues_then_pump_admits(self, genealogy_service):
        session = genealogy_service.open_session("ada")
        ticket = genealogy_service.submit(session.session_id, _person_insert("Ada"))
        assert ticket.status is TicketStatus.QUEUED
        assert genealogy_service.queue_depth == 1
        report = genealogy_service.pump()
        assert ticket in report.admitted
        assert ticket.priority == 1
        assert genealogy_service.queue_depth == 0

    def test_admission_respects_max_in_flight(self):
        database, mappings = genealogy_repository()
        service = RepositoryService(
            database.snapshot(),
            mappings,
            admission=AdmissionConfig(max_in_flight=2, batch_size=2),
        )
        session = service.open_session("ada")
        tickets = [
            service.submit(session.session_id, _person_insert("P{}".format(i)))
            for i in range(5)
        ]
        service.pump()
        # Two admitted (and immediately parked on the cyclic mapping); the
        # other three must wait although the scheduler is idle.
        statuses = [ticket.status for ticket in tickets]
        assert statuses.count(TicketStatus.WAITING_FRONTIER) == 2
        assert statuses.count(TicketStatus.QUEUED) == 3
        assert service.queue_depth == 3
        # Parked updates hold their slots: more pumping admits nothing.
        assert service.pump().admitted == []
        # Answering one question lets that update commit; the freed slot is
        # handed out at the start of the following pump.
        question = service.inbox()[0]
        service.answer(session.session_id, question.decision_id, _unify(question))
        report = service.pump()
        assert len(report.committed) == 1
        report = service.pump()
        assert len(report.admitted) == 1

    def test_queue_overflow_raises_and_discards(self):
        database, mappings = genealogy_repository()
        service = RepositoryService(
            database.snapshot(),
            mappings,
            admission=AdmissionConfig(max_queue_depth=1),
        )
        session = service.open_session("ada")
        service.submit(session.session_id, _person_insert("A"))
        with pytest.raises(AdmissionError):
            service.submit(session.session_id, _person_insert("B"))
        # The rejected operation left no trace.
        assert session.submitted == 1
        assert len(service.tickets()) == 1

    def test_unknown_ticket_is_a_service_error(self, genealogy_service):
        with pytest.raises(ServiceError):
            genealogy_service.ticket(9)


class TestFrontierInbox:
    def test_park_answer_resume_commit(self, genealogy_service):
        ada = genealogy_service.open_session("ada")
        bo = genealogy_service.open_session("bo")
        ticket = genealogy_service.submit(ada.session_id, _person_insert("Ada"))
        report = genealogy_service.pump()
        assert len(report.parked) == 1
        assert ticket.status is TicketStatus.WAITING_FRONTIER
        assert ticket.parks == 1
        question = genealogy_service.inbox()[0]
        assert question.ticket is ticket
        # A *different* session answers — collaboration across clients.
        genealogy_service.answer(bo.session_id, question.decision_id, _unify(question))
        assert ticket.status is TicketStatus.RUNNING
        assert bo.frontier_answers == 1
        report = genealogy_service.pump()
        assert ticket in report.committed
        assert ticket.status is TicketStatus.COMMITTED
        assert ticket.frontier_wait_seconds > 0
        assert genealogy_service.is_quiescent

    def test_duplicate_answer_is_rejected(self, genealogy_service):
        ada = genealogy_service.open_session("ada")
        genealogy_service.submit(ada.session_id, _person_insert("Ada"))
        genealogy_service.pump()
        question = genealogy_service.inbox()[0]
        genealogy_service.answer(ada.session_id, question.decision_id, _unify(question))
        with pytest.raises(OracleError):
            genealogy_service.answer(ada.session_id, question.decision_id, 0)

    def test_answer_by_index(self, genealogy_service):
        ada = genealogy_service.open_session("ada")
        ticket = genealogy_service.submit(ada.session_id, _person_insert("Ada"))
        genealogy_service.pump()
        question = genealogy_service.inbox()[0]
        unify_index = question.alternatives().index(_unify(question))
        genealogy_service.answer(ada.session_id, question.decision_id, unify_index)
        genealogy_service.pump()
        assert ticket.status is TicketStatus.COMMITTED

    def test_no_busy_stepping_while_parked(self, genealogy_service):
        ada = genealogy_service.open_session("ada")
        ticket = genealogy_service.submit(ada.session_id, _person_insert("Ada"))
        genealogy_service.pump()
        execution = genealogy_service.scheduler.execution(ticket.priority)
        steps_before = execution.steps_taken
        for _ in range(5):
            assert genealogy_service.pump().steps == 0
        assert execution.steps_taken == steps_before


class TestSnapshotReads:
    def test_reads_see_only_committed_state(self, genealogy_service):
        ada = genealogy_service.open_session("ada")
        ticket = genealogy_service.submit(ada.session_id, _person_insert("Ada"))
        genealogy_service.pump()
        # The insert happened in the store, but the update is parked: the
        # committed snapshot must not show it.
        assert ticket.status is TicketStatus.WAITING_FRONTIER
        assert genealogy_service.read("Person") == []
        assert genealogy_service.count("Person") == 0
        question = genealogy_service.inbox()[0]
        genealogy_service.answer(ada.session_id, question.decision_id, _unify(question))
        genealogy_service.pump()
        assert genealogy_service.read("Person") == [make_tuple("Person", "Ada")]
        snapshot = genealogy_service.snapshot()
        assert snapshot.count("Father") == 1

    def test_travel_updates_commit_without_parking(self, travel_service):
        # Deterministic repairs never consult the oracle, so nothing parks.
        session = travel_service.open_session("ada")
        ticket = travel_service.submit(
            session.session_id,
            InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")),
        )
        travel_service.run_until_blocked()
        assert ticket.status is TicketStatus.COMMITTED
        assert travel_service.metrics.parks == 0
        assert travel_service.count("R") > 0


class TestMetricsAndRunUntilBlocked:
    def test_metrics_snapshot_contains_service_and_scheduler_keys(self, genealogy_service):
        ada = genealogy_service.open_session("ada")
        genealogy_service.submit(ada.session_id, _person_insert("Ada"))
        genealogy_service.pump()
        question = genealogy_service.inbox()[0]
        genealogy_service.answer(ada.session_id, question.decision_id, _unify(question))
        genealogy_service.pump()
        data = genealogy_service.metrics_snapshot()
        assert data["committed"] == 1
        assert data["parks"] == 1
        assert data["resumes"] == 1
        assert data["throughput_per_second"] > 0
        assert data["frontier_wait_p50_seconds"] > 0
        assert data["scheduler_steps"] >= 3
        assert data["scheduler_frontier_parks"] == 1

    def test_run_until_blocked_stops_at_open_questions(self, genealogy_service):
        ada = genealogy_service.open_session("ada")
        genealogy_service.submit(ada.session_id, _person_insert("Ada"))
        reports = genealogy_service.run_until_blocked()
        assert reports, "at least one pump happened"
        assert len(genealogy_service.inbox()) == 1
        assert not genealogy_service.is_quiescent

    def test_committed_executions_are_pruned_from_the_scheduler(self, travel_service):
        # A long-running service must not scan everything ever served on each
        # pump: committed executions are dropped, statistics still complete.
        session = travel_service.open_session("ada")
        for serial in range(3):
            travel_service.submit(
                session.session_id,
                InsertOperation(make_tuple("T", "Falls", "Tours-{}".format(serial), "Kingston")),
            )
        travel_service.run_until_blocked()
        assert session.committed == 3
        assert travel_service.scheduler.executions() == []
        assert travel_service.statistics.updates_terminated == 3
        assert len(travel_service.scheduler.committed_priorities()) == 3

    def test_run_until_blocked_drains_deterministic_work(self, travel_service):
        session = travel_service.open_session("ada")
        for city in ("Toronto", "Ottawa"):
            travel_service.submit(
                session.session_id,
                InsertOperation(make_tuple("T", "Falls", "Tours-" + city, city)),
            )
        travel_service.run_until_blocked()
        assert travel_service.is_quiescent
        assert session.committed == 2


class TestSchedulerStall:
    def test_budget_stall_fails_tickets_and_frees_slots(self):
        from repro.concurrency import SchedulerStalled

        database, mappings = genealogy_repository()
        service = RepositoryService(
            database.snapshot(),
            mappings,
            admission=AdmissionConfig(max_in_flight=1),
            max_total_steps=2,
        )
        session = service.open_session("ada")
        ticket = service.submit(session.session_id, _person_insert("Ada"))
        service.pump()  # parks within the budget
        question = service.inbox()[0]
        service.answer(session.session_id, question.decision_id, 0)  # expand: more work
        with pytest.raises(SchedulerStalled):
            service.pump()
        # The stall must reach the ticket layer: FAILED, slot released,
        # failure counted — no zombie blocking admission forever.
        assert ticket.status is TicketStatus.FAILED
        assert ticket.is_done
        assert service.metrics.failed == 1
        assert service._in_flight_count() == 0
        follow_up = service.submit(session.session_id, _person_insert("Bea"))
        with pytest.raises(SchedulerStalled):
            # The lifetime budget is spent, but admission itself still works.
            service.pump()
        assert follow_up.priority is not None

    def test_tickets_parked_at_stall_are_failed_with_their_questions(self):
        from repro.concurrency import SchedulerStalled

        database, mappings = genealogy_repository()
        service = RepositoryService(
            database.snapshot(),
            mappings,
            admission=AdmissionConfig(max_in_flight=2, batch_size=2),
            max_total_steps=3,
        )
        session = service.open_session("ada")
        first = service.submit(session.session_id, _person_insert("Ada"))
        second = service.submit(session.session_id, _person_insert("Bea"))
        service.pump()  # both park (2 steps spent)
        assert first.is_parked and second.is_parked
        question = service.inbox()[0]
        service.answer(session.session_id, question.decision_id, 0)  # expand
        with pytest.raises(SchedulerStalled):
            service.pump()
        # Both the resumed and the still-parked ticket must fail: slots
        # freed, no ghost questions left in the inbox.
        assert first.status is TicketStatus.FAILED
        assert second.status is TicketStatus.FAILED
        assert service.inbox() == []
        assert service._in_flight_count() == 0
        assert service.metrics.failed == 2


def test_serve_cli_runs_a_small_closed_loop(capsys):
    from repro.service.cli import main

    assert main(["--clients", "2", "--updates", "1", "--answer-delay", "1"]) == 0
    output = capsys.readouterr().out
    assert "Closed-loop run over" in output
    assert "Service metrics" in output
    assert "1 submitted, 1 committed" in output


def test_serve_cli_snapshot_and_restore(tmp_path, capsys):
    from repro.service.cli import main

    path = str(tmp_path / "serve.ckpt")
    assert main([
        "--clients", "2", "--updates", "1", "--answer-delay", "1",
        "--snapshot-path", path,
    ]) == 0
    output = capsys.readouterr().out
    assert "Checkpoint written to {}".format(path) in output
    # Second serve restores from the checkpoint and runs a fresh workload.
    assert main([
        "--clients", "1", "--updates", "1", "--answer-delay", "1",
        "--snapshot-path", path, "--restore",
    ]) == 0
    output = capsys.readouterr().out
    assert "Restored service from {}".format(path) in output
    assert "Closed-loop run over" in output


def test_serve_cli_restore_requires_snapshot_path():
    from repro.service.cli import main

    with pytest.raises(SystemExit, match="--restore requires --snapshot-path"):
        main(["--restore"])
