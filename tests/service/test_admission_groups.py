"""Compatible-group admission: FIFO-preserving relation-disjoint batches."""

from __future__ import annotations

import pytest

from repro.core.tuples import make_tuple
from repro.core.update import (
    DeleteOperation,
    InsertOperation,
    NullReplacementOperation,
)
from repro.core.terms import LabeledNull
from repro.service.admission import AdmissionConfig, AdmissionQueue
from repro.service.tickets import UpdateTicket


def _ticket(ticket_id, operation):
    return UpdateTicket(ticket_id=ticket_id, session_id=1, operation=operation)


def _insert(ticket_id, relation):
    return _ticket(ticket_id, InsertOperation(make_tuple(relation, "v{}".format(ticket_id))))


def _queue(*tickets, **config_overrides):
    defaults = dict(max_in_flight=8, batch_size=4, compatible_groups=True)
    defaults.update(config_overrides)
    queue = AdmissionQueue(AdmissionConfig(**defaults))
    for ticket in tickets:
        queue.enqueue(ticket)
    return queue


class TestCompatibleGroups:
    def test_disjoint_relations_batch_together(self):
        queue = _queue(_insert(1, "A"), _insert(2, "B"), _insert(3, "C"))
        admitted = queue.take(0)
        assert [t.ticket_id for t in admitted] == [1, 2, 3]

    def test_batch_stops_at_first_overlap_preserving_fifo(self):
        queue = _queue(_insert(1, "A"), _insert(2, "A"), _insert(3, "B"))
        first = queue.take(0)
        assert [t.ticket_id for t in first] == [1]
        # The overlapping ticket was not overtaken; it leads the next batch.
        second = queue.take(0)
        assert [t.ticket_id for t in second] == [2, 3]

    def test_deletes_group_like_inserts(self):
        queue = _queue(
            _ticket(1, DeleteOperation(make_tuple("A", "x"))),
            _insert(2, "B"),
        )
        assert [t.ticket_id for t in queue.take(0)] == [1, 2]

    def test_unknown_write_set_is_admitted_alone(self):
        replacement = NullReplacementOperation(LabeledNull("n"), "value")
        assert replacement.target_relations() is None
        queue = _queue(_ticket(1, replacement), _insert(2, "A"))
        assert [t.ticket_id for t in queue.take(0)] == [1]
        assert [t.ticket_id for t in queue.take(0)] == [2]

    def test_unknown_write_set_ends_a_running_batch(self):
        replacement = NullReplacementOperation(LabeledNull("n"), "value")
        queue = _queue(_insert(1, "A"), _ticket(2, replacement))
        assert [t.ticket_id for t in queue.take(0)] == [1]
        assert [t.ticket_id for t in queue.take(0)] == [2]

    def test_slots_still_bound_the_group(self):
        queue = _queue(
            _insert(1, "A"),
            _insert(2, "B"),
            _insert(3, "C"),
            _insert(4, "D"),
            _insert(5, "E"),
            batch_size=3,
        )
        assert [t.ticket_id for t in queue.take(0)] == [1, 2, 3]
        assert [t.ticket_id for t in queue.take(0)] == [4, 5]

    def test_max_in_flight_still_respected(self):
        queue = _queue(_insert(1, "A"), _insert(2, "B"), max_in_flight=3)
        assert [t.ticket_id for t in queue.take(2)] == [1]

    def test_disabled_grouping_keeps_plain_fifo_batches(self):
        queue = _queue(
            _insert(1, "A"), _insert(2, "A"), _insert(3, "A"), compatible_groups=False
        )
        assert [t.ticket_id for t in queue.take(0)] == [1, 2, 3]


class TestTargetRelations:
    def test_insert_and_delete_report_their_relation(self):
        assert InsertOperation(make_tuple("A", "x")).target_relations() == frozenset(
            {"A"}
        )
        assert DeleteOperation(make_tuple("B", "x")).target_relations() == frozenset(
            {"B"}
        )

    def test_remote_operations_report_their_relations(self):
        from repro.core.atoms import Atom
        from repro.core.terms import Variable
        from repro.core.tgd import Tgd
        from repro.federation.operations import (
            RemoteFiringOperation,
            RemoteRetractionOperation,
        )

        x = Variable("x")
        tgd = Tgd([Atom("A", [x])], [Atom("B", [x])], name="m")
        firing = RemoteFiringOperation(tgd, {}, (make_tuple("B", "v"),))
        assert firing.target_relations() == frozenset({"B"})
        retraction = RemoteRetractionOperation(tgd, {})
        assert retraction.target_relations() == frozenset({"A"})
