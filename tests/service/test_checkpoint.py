"""Service checkpoint/restore: committed state + watermark + pending inbox.

A checkpointed service restarts as a fresh process would: the committed
snapshot becomes its initial database, every queued or in-flight-uncommitted
operation is re-submitted (with its federation origin) in the original order,
the null-factory numbering resumes past everything already minted, and
frontier decision ids resume past everything already issued — so nothing a
restarted peer produces can collide with bytes its predecessor already put on
a wire.
"""

from __future__ import annotations

import pytest

from repro.core.terms import LabeledNull
from repro.core.tuples import make_tuple
from repro.core.update import InsertOperation
from repro.fixtures.genealogy import genealogy_repository
from repro.service.admission import AdmissionConfig
from repro.service.repository import RepositoryService
from repro.service.tickets import RemoteOrigin, TicketStatus
from repro.storage.interface import dump_sorted
from repro.workload.closed_loop import conservative_answer


def _service(**kwargs):
    database, mappings = genealogy_repository()
    return RepositoryService(database.snapshot(), mappings, **kwargs), mappings


def test_checkpoint_carries_committed_state_and_watermark(tmp_path):
    service, mappings = _service()
    session = service.open_session("writer")
    ticket = service.submit(session.session_id, InsertOperation(make_tuple("Person", "zoe")))
    service.run_until_blocked()
    # Answer until the insert commits (the cyclic mapping parks it).
    for _ in range(10):
        if ticket.status is TicketStatus.COMMITTED:
            break
        for question in service.inbox():
            service.answer(session.session_id, question.decision_id,
                           conservative_answer(question))
        service.run_until_blocked()
    assert ticket.status is TicketStatus.COMMITTED
    path = str(tmp_path / "svc.ckpt")
    body = service.checkpoint(path)
    assert body["watermark"] == service.scheduler.commit_watermark()
    assert body["pending"] == []
    restored = RepositoryService.restore(path, mappings)
    assert dump_sorted(restored.service.snapshot()) == dump_sorted(service.snapshot())


def test_pending_operations_resubmit_in_order_with_origins(tmp_path):
    service, mappings = _service(admission=AdmissionConfig(max_in_flight=1, batch_size=1))
    session = service.open_session("writer")
    origin = RemoteOrigin("p9", 42)
    tickets = [
        service.submit(session.session_id, InsertOperation(make_tuple("Person", name)),
                       origin=origin if name == "b" else None)
        for name in ("a", "b", "c")
    ]
    service.pump()  # admit "a" only (max_in_flight=1); it parks on its question
    assert tickets[0].status in (TicketStatus.RUNNING, TicketStatus.WAITING_FRONTIER)
    path = str(tmp_path / "svc.ckpt")
    body = service.checkpoint(path)
    # Every non-terminal ticket is pending: the running one re-executes too.
    assert [entry["ticket"] for entry in body["pending"]] == [1, 2, 3]
    restored = RepositoryService.restore(path, mappings)
    assert sorted(restored.resubmitted) == [1, 2, 3]
    replacement = restored.resubmitted[2]
    assert replacement.origin == origin
    assert [restored.resubmitted[i].operation for i in (1, 2, 3)] == [
        t.operation for t in tickets
    ]


def test_restored_null_factory_and_decision_ids_do_not_collide(tmp_path):
    service, mappings = _service()
    session = service.open_session("writer")
    service.submit(session.session_id, InsertOperation(make_tuple("Person", "ann")))
    service.run_until_blocked()
    assert service.inbox()  # a question was asked -> a decision id was issued
    minted = service.null_factory.fresh()
    issued = service.inbox()[0].decision_id
    path = str(tmp_path / "svc.ckpt")
    service.checkpoint(path)
    restored = RepositoryService.restore(path, mappings).service
    # Null numbering resumes past the predecessor's last minted null.
    fresh = restored.null_factory.fresh()
    assert fresh != minted
    assert int(fresh.name[len(restored.null_factory.prefix):]) > int(
        minted.name[len(service.null_factory.prefix):]
    )
    restored.run_until_blocked()
    assert restored.inbox()
    assert all(q.decision_id > issued for q in restored.inbox())


def test_restore_rejects_unknown_version(tmp_path):
    from repro.codec import CodecError
    from repro.codec.wire import dumps

    path = tmp_path / "bad.ckpt"
    path.write_bytes(dumps({"v": 99, "t": "service-checkpoint"}) + b"\n")
    _, mappings = _service()
    with pytest.raises(CodecError, match="unsupported checkpoint version"):
        RepositoryService.restore(str(path), mappings)


def test_durable_dir_attaches_segments(tmp_path):
    database, mappings = genealogy_repository()
    service = RepositoryService(
        database.snapshot(), mappings, durable_dir=str(tmp_path / "wal")
    )
    session = service.open_session("writer")
    service.submit(session.session_id, InsertOperation(make_tuple("Person", "kim")))
    service.run_until_blocked()
    segments = service.scheduler.store.segments
    assert segments is not None
    assert (tmp_path / "wal").is_dir()
    # The insert's write reached the durable log.
    nulls_named = [
        entry.write.row for entry in segments.replay()
        if entry.write.row.relation == "Person"
    ]
    assert make_tuple("Person", "kim") in nulls_named
