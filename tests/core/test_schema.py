"""Unit tests for relation and database schemas."""

import pytest

from repro.core.schema import (
    DatabaseSchema,
    RelationSchema,
    SchemaError,
    generic_attributes,
)
from repro.core.tuples import make_tuple


class TestRelationSchema:
    def test_basic_properties(self):
        relation = RelationSchema("T", ["attraction", "company", "tour_start"])
        assert relation.arity == 3
        assert relation.position_of("company") == 1
        assert str(relation) == "T(attraction, company, tour_start)"

    def test_rejects_empty_name_and_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ["a"])
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_unknown_attribute(self):
        relation = RelationSchema("R", ["a", "b"])
        with pytest.raises(SchemaError):
            relation.position_of("c")

    def test_validate_tuple(self):
        relation = RelationSchema("R", ["a", "b"])
        relation.validate_tuple(make_tuple("R", 1, 2))
        with pytest.raises(SchemaError):
            relation.validate_tuple(make_tuple("R", 1))
        with pytest.raises(SchemaError):
            relation.validate_tuple(make_tuple("S", 1, 2))


class TestDatabaseSchema:
    def test_from_dict_and_lookup(self):
        schema = DatabaseSchema.from_dict({"C": ["city"], "V": ["city", "convention"]})
        assert len(schema) == 2
        assert "C" in schema
        assert schema.arity_of("V") == 2
        assert schema.relation_names() == ["C", "V"]

    def test_duplicate_relations_rejected(self):
        schema = DatabaseSchema.from_dict({"C": ["city"]})
        with pytest.raises(SchemaError):
            schema.add_relation(RelationSchema("C", ["other"]))

    def test_unknown_relation(self):
        schema = DatabaseSchema.from_dict({"C": ["city"]})
        with pytest.raises(SchemaError):
            schema.relation("Z")
        with pytest.raises(SchemaError):
            schema.validate_tuple(make_tuple("Z", 1))

    def test_restrict_and_copy(self):
        schema = DatabaseSchema.from_dict({"C": ["city"], "V": ["city", "convention"]})
        restricted = schema.restrict(["C"])
        assert restricted.relation_names() == ["C"]
        copied = schema.copy()
        assert copied.relation_names() == schema.relation_names()
        assert copied is not schema

    def test_describe_lists_every_relation(self):
        schema = DatabaseSchema.from_dict({"C": ["city"], "V": ["city", "convention"]})
        description = schema.describe()
        assert "C(city)" in description
        assert "V(city, convention)" in description


class TestGenericAttributes:
    def test_names_and_count(self):
        assert generic_attributes(3) == ["a1", "a2", "a3"]
        assert generic_attributes(2, prefix="col") == ["col1", "col2"]

    def test_rejects_non_positive_arity(self):
        with pytest.raises(SchemaError):
            generic_attributes(0)
