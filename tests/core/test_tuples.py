"""Unit and property tests for tuples and the more-specific-than relation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.terms import Constant, LabeledNull, Variable
from repro.core.tuples import Tuple, make_tuple, most_specific, unification_assignment


def null(name):
    return LabeledNull(name)


class TestTupleBasics:
    def test_values_are_coerced_to_terms(self):
        row = make_tuple("C", "Ithaca", 3)
        assert row.values == (Constant("Ithaca"), Constant(3))

    def test_equality_and_hash(self):
        assert make_tuple("C", "a") == make_tuple("C", "a")
        assert make_tuple("C", "a") != make_tuple("D", "a")
        assert make_tuple("C", "a") != make_tuple("C", "b")
        assert hash(make_tuple("C", "a")) == hash(make_tuple("C", "a"))

    def test_variables_cannot_be_stored(self):
        with pytest.raises(TypeError):
            Tuple("C", [Variable("v")])

    def test_iteration_and_indexing(self):
        row = make_tuple("R", "a", null("x"), "b")
        assert len(row) == 3
        assert list(row) == list(row.values)
        assert row[1] == null("x")

    def test_null_helpers(self):
        row = make_tuple("R", "a", null("x"), null("x"), null("y"))
        assert row.has_nulls()
        assert not row.is_ground()
        assert row.nulls() == (null("x"), null("x"), null("y"))
        assert row.null_set() == {null("x"), null("y")}
        assert row.contains_null(null("y"))
        assert not row.contains_null(null("z"))
        assert make_tuple("R", "a").is_ground()

    def test_substitute_replaces_all_occurrences(self):
        row = make_tuple("R", null("x"), "a", null("x"))
        replaced = row.substitute({null("x"): Constant("v")})
        assert replaced == make_tuple("R", "v", "a", "v")

    def test_substitute_ignores_unknown_nulls(self):
        row = make_tuple("R", null("x"))
        assert row.substitute({null("y"): Constant("v")}) == row


class TestSpecificity:
    """Definition 2.4: t more specific than t' iff f(a'_i)=a_i is a function, identity on constants."""

    def test_every_tuple_is_more_specific_than_itself(self):
        row = make_tuple("R", "a", null("x"))
        assert row.is_more_specific_than(row)
        assert not row.strictly_more_specific_than(row)

    def test_constant_refines_null(self):
        general = make_tuple("C", null("x4"))
        specific = make_tuple("C", "NYC")
        assert specific.is_more_specific_than(general)
        assert not general.is_more_specific_than(specific)

    def test_constants_must_match_exactly(self):
        assert not make_tuple("C", "Ithaca").is_more_specific_than(make_tuple("C", "NYC"))

    def test_different_relations_are_incomparable(self):
        assert not make_tuple("C", "a").is_more_specific_than(make_tuple("D", "a"))

    def test_map_must_be_a_function(self):
        # x occurs twice in the general tuple but would have to map to two
        # different values, so the map is not a function.
        general = make_tuple("R", null("x"), null("x"))
        specific = make_tuple("R", "a", "b")
        assert not specific.is_more_specific_than(general)
        consistent = make_tuple("R", "a", "a")
        assert consistent.is_more_specific_than(general)

    def test_null_to_null_mapping_is_allowed(self):
        general = make_tuple("S", null("x3"), null("x4"), "NYC")
        specific = make_tuple("S", "SYR", null("z"), "NYC")
        assert specific.is_more_specific_than(general)

    def test_paper_example_s_tuples_not_more_specific(self):
        # From Section 2.2: S(SYR, Syracuse, Ithaca) is not more specific than
        # S(x3, x4, NYC) because the constant NYC does not match.
        general = make_tuple("S", null("x3"), null("x4"), "NYC")
        existing = make_tuple("S", "SYR", "Syracuse", "Ithaca")
        assert not existing.is_more_specific_than(general)

    def test_specificity_map_contents(self):
        general = make_tuple("R", null("x"), "a")
        specific = make_tuple("R", "b", "a")
        mapping = specific.specificity_map(general)
        assert mapping == {null("x"): Constant("b"), Constant("a"): Constant("a")}


# ----------------------------------------------------------------------
# Property-based tests for the specificity relation
# ----------------------------------------------------------------------
_terms = st.one_of(
    st.sampled_from([Constant("a"), Constant("b"), Constant("c")]),
    st.sampled_from([LabeledNull("x"), LabeledNull("y"), LabeledNull("z")]),
)
_rows = st.lists(_terms, min_size=1, max_size=4).map(lambda values: Tuple("R", values))


@given(_rows)
def test_specificity_is_reflexive(row):
    assert row.is_more_specific_than(row)


@given(_rows, _rows)
def test_strict_specificity_is_antisymmetric_on_distinct_tuples(first, second):
    if first.arity != second.arity:
        return
    if first.strictly_more_specific_than(second) and second.strictly_more_specific_than(first):
        # Mutual strict specificity means the two tuples differ only by a
        # renaming of nulls; they must then have nulls in the same positions.
        for mine, theirs in zip(first.values, second.values):
            assert isinstance(mine, LabeledNull) == isinstance(theirs, LabeledNull)


@given(_rows, _rows, _rows)
def test_specificity_is_transitive(first, second, third):
    if first.arity == second.arity == third.arity:
        if first.is_more_specific_than(second) and second.is_more_specific_than(third):
            assert first.is_more_specific_than(third)


@given(_rows, st.sampled_from(["a", "b", "q"]))
def test_ground_substitution_yields_more_specific_tuple(row, value):
    substitution = {null_term: Constant(value) for null_term in row.null_set()}
    ground = row.substitute(substitution)
    assert ground.is_more_specific_than(row)


class TestUnificationAssignment:
    def test_unification_maps_nulls_to_target_values(self):
        general = make_tuple("C", null("x4"))
        target = make_tuple("C", "NYC")
        assignment = unification_assignment(general, target)
        assert assignment == {null("x4"): Constant("NYC")}

    def test_unification_requires_more_specific_target(self):
        with pytest.raises(ValueError):
            unification_assignment(make_tuple("C", "Ithaca"), make_tuple("C", "NYC"))

    def test_identity_bindings_are_dropped(self):
        general = make_tuple("R", null("x"), null("y"))
        target = make_tuple("R", null("x"), "a")
        assignment = unification_assignment(general, target)
        assert assignment == {null("y"): Constant("a")}

    def test_applying_the_assignment_yields_the_target(self):
        general = make_tuple("R", null("x"), "a", null("y"))
        target = make_tuple("R", "b", "a", null("z"))
        assignment = unification_assignment(general, target)
        assert general.substitute(assignment) == target


class TestMostSpecific:
    def test_dominated_tuples_are_dropped(self):
        rows = [make_tuple("C", null("x")), make_tuple("C", "NYC")]
        assert most_specific(rows) == [make_tuple("C", "NYC")]

    def test_incomparable_tuples_are_kept(self):
        rows = [make_tuple("C", "NYC"), make_tuple("C", "Ithaca")]
        assert set(most_specific(rows)) == set(rows)
