"""Unit tests for frontier oracles."""

import pytest

from repro.core.frontier import (
    DeleteSubsetOperation,
    ExpandOperation,
    NegativeFrontierRequest,
    PositiveFrontierRequest,
    UnifyOperation,
    plan_backward_repair,
    plan_forward_repair,
)
from repro.core.oracle import (
    AlwaysExpandOracle,
    AlwaysUnifyOracle,
    CallbackOracle,
    CountingOracle,
    InteractiveOracle,
    OracleError,
    RandomOracle,
    ScriptedOracle,
)
from repro.core.terms import NullFactory
from repro.core.tuples import make_tuple
from repro.core.violations import violations_for_write
from repro.core.writes import delete, insert
from repro.fixtures import genealogy_repository


@pytest.fixture
def positive_request():
    database, mappings = genealogy_repository()
    row = make_tuple("Person", "John")
    database.insert(row)
    violation = violations_for_write(insert(row), list(mappings), database)[0]
    request = plan_forward_repair(violation, database, NullFactory(prefix="f"))
    assert isinstance(request, PositiveFrontierRequest)
    return request, database


@pytest.fixture
def negative_request(travel):
    database, mappings = travel
    removed = make_tuple("R", "XYZ", "Geneva Winery", "Great!")
    database.delete(removed)
    violation = violations_for_write(delete(removed), list(mappings), database)[0]
    request = plan_backward_repair(violation, database)
    assert isinstance(request, NegativeFrontierRequest)
    return request, database


class TestRandomOracle:
    def test_decision_is_one_of_the_alternatives(self, positive_request):
        request, database = positive_request
        oracle = RandomOracle(seed=3)
        decision = oracle.decide(request, database)
        assert any(
            type(decision) is type(alternative) and decision == alternative
            for alternative in request.alternatives()
        )

    def test_seeded_oracle_is_reproducible(self, positive_request):
        request, database = positive_request
        first = RandomOracle(seed=9).decide(request, database)
        second = RandomOracle(seed=9).decide(request, database)
        assert first == second

    def test_reset_restores_the_seed(self, positive_request):
        request, database = positive_request
        oracle = RandomOracle(seed=4)
        first = oracle.decide(request, database)
        oracle.reset()
        assert oracle.decide(request, database) == first


class TestPolicyOracles:
    def test_always_expand(self, positive_request, negative_request):
        request, database = positive_request
        assert isinstance(AlwaysExpandOracle().decide(request, database), ExpandOperation)
        request, database = negative_request
        decision = AlwaysExpandOracle().decide(request, database)
        assert isinstance(decision, DeleteSubsetOperation)

    def test_always_unify_prefers_unification(self, positive_request):
        request, database = positive_request
        decision = AlwaysUnifyOracle().decide(request, database)
        assert isinstance(decision, UnifyOperation)

    def test_always_unify_on_negative_request(self, negative_request):
        request, database = negative_request
        decision = AlwaysUnifyOracle().decide(request, database)
        assert isinstance(decision, DeleteSubsetOperation)
        assert len(decision.rows) == 1


class TestScriptedOracle:
    def test_replays_operations_in_order(self, positive_request):
        request, database = positive_request
        expand = ExpandOperation(request.frontier_tuples[0])
        oracle = ScriptedOracle([expand])
        assert oracle.decide(request, database) is expand
        assert oracle.decisions_used == 1

    def test_callable_entries_receive_the_request(self, positive_request):
        request, database = positive_request
        oracle = ScriptedOracle([lambda req, view: ExpandOperation(req.frontier_tuples[0])])
        decision = oracle.decide(request, database)
        assert isinstance(decision, ExpandOperation)

    def test_exhausted_script_raises(self, positive_request):
        request, database = positive_request
        oracle = ScriptedOracle([])
        with pytest.raises(OracleError):
            oracle.decide(request, database)

    def test_reset_rewinds_the_script(self, positive_request):
        request, database = positive_request
        oracle = ScriptedOracle([lambda req, view: ExpandOperation(req.frontier_tuples[0])])
        oracle.decide(request, database)
        oracle.reset()
        assert oracle.decisions_used == 0
        oracle.decide(request, database)


class TestCountingAndCallbackOracles:
    def test_counting_oracle_counts_request_kinds(self, positive_request, negative_request):
        oracle = CountingOracle(AlwaysExpandOracle())
        request, database = positive_request
        oracle.decide(request, database)
        request, database = negative_request
        oracle.decide(request, database)
        assert oracle.positive_requests == 1
        assert oracle.negative_requests == 1
        assert oracle.total_requests == 2
        oracle.reset()
        assert oracle.total_requests == 0

    def test_callback_oracle_delegates(self, positive_request):
        request, database = positive_request
        seen = []

        def callback(req, view):
            seen.append(req)
            return ExpandOperation(req.frontier_tuples[0])

        oracle = CallbackOracle(callback)
        oracle.decide(request, database)
        assert seen == [request]


class TestInteractiveOracle:
    def test_prompts_until_a_valid_choice(self, positive_request):
        request, database = positive_request
        answers = iter(["not a number", "999", "0"])
        outputs = []
        oracle = InteractiveOracle(
            input_function=lambda prompt: next(answers), echo=outputs.append
        )
        decision = oracle.decide(request, database)
        assert decision == request.alternatives()[0]
        assert any("Frontier reached" in line for line in outputs)
