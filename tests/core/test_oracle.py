"""Unit tests for frontier oracles."""

import pytest

from repro.core.frontier import (
    DeleteSubsetOperation,
    ExpandOperation,
    NegativeFrontierRequest,
    PositiveFrontierRequest,
    UnifyOperation,
    plan_backward_repair,
    plan_forward_repair,
)
from repro.core.oracle import (
    AlwaysExpandOracle,
    AlwaysUnifyOracle,
    CallbackOracle,
    CountingOracle,
    DeferredOracle,
    FrontierPending,
    InteractiveOracle,
    OracleError,
    RandomOracle,
    ScriptedOracle,
)
from repro.core.terms import NullFactory
from repro.core.tuples import make_tuple
from repro.core.violations import violations_for_write
from repro.core.writes import delete, insert
from repro.fixtures import genealogy_repository


@pytest.fixture
def positive_request():
    database, mappings = genealogy_repository()
    row = make_tuple("Person", "John")
    database.insert(row)
    violation = violations_for_write(insert(row), list(mappings), database)[0]
    request = plan_forward_repair(violation, database, NullFactory(prefix="f"))
    assert isinstance(request, PositiveFrontierRequest)
    return request, database


@pytest.fixture
def negative_request(travel):
    database, mappings = travel
    removed = make_tuple("R", "XYZ", "Geneva Winery", "Great!")
    database.delete(removed)
    violation = violations_for_write(delete(removed), list(mappings), database)[0]
    request = plan_backward_repair(violation, database)
    assert isinstance(request, NegativeFrontierRequest)
    return request, database


class TestRandomOracle:
    def test_decision_is_one_of_the_alternatives(self, positive_request):
        request, database = positive_request
        oracle = RandomOracle(seed=3)
        decision = oracle.decide(request, database)
        assert any(
            type(decision) is type(alternative) and decision == alternative
            for alternative in request.alternatives()
        )

    def test_seeded_oracle_is_reproducible(self, positive_request):
        request, database = positive_request
        first = RandomOracle(seed=9).decide(request, database)
        second = RandomOracle(seed=9).decide(request, database)
        assert first == second

    def test_reset_restores_the_seed(self, positive_request):
        request, database = positive_request
        oracle = RandomOracle(seed=4)
        first = oracle.decide(request, database)
        oracle.reset()
        assert oracle.decide(request, database) == first


class TestPolicyOracles:
    def test_always_expand(self, positive_request, negative_request):
        request, database = positive_request
        assert isinstance(AlwaysExpandOracle().decide(request, database), ExpandOperation)
        request, database = negative_request
        decision = AlwaysExpandOracle().decide(request, database)
        assert isinstance(decision, DeleteSubsetOperation)

    def test_always_unify_prefers_unification(self, positive_request):
        request, database = positive_request
        decision = AlwaysUnifyOracle().decide(request, database)
        assert isinstance(decision, UnifyOperation)

    def test_always_unify_on_negative_request(self, negative_request):
        request, database = negative_request
        decision = AlwaysUnifyOracle().decide(request, database)
        assert isinstance(decision, DeleteSubsetOperation)
        assert len(decision.rows) == 1


class TestScriptedOracle:
    def test_replays_operations_in_order(self, positive_request):
        request, database = positive_request
        expand = ExpandOperation(request.frontier_tuples[0])
        oracle = ScriptedOracle([expand])
        assert oracle.decide(request, database) is expand
        assert oracle.decisions_used == 1

    def test_callable_entries_receive_the_request(self, positive_request):
        request, database = positive_request
        oracle = ScriptedOracle([lambda req, view: ExpandOperation(req.frontier_tuples[0])])
        decision = oracle.decide(request, database)
        assert isinstance(decision, ExpandOperation)

    def test_exhausted_script_raises(self, positive_request):
        request, database = positive_request
        oracle = ScriptedOracle([])
        with pytest.raises(OracleError):
            oracle.decide(request, database)

    def test_reset_rewinds_the_script(self, positive_request):
        request, database = positive_request
        oracle = ScriptedOracle([lambda req, view: ExpandOperation(req.frontier_tuples[0])])
        oracle.decide(request, database)
        oracle.reset()
        assert oracle.decisions_used == 0
        oracle.decide(request, database)


class TestCountingAndCallbackOracles:
    def test_counting_oracle_counts_request_kinds(self, positive_request, negative_request):
        oracle = CountingOracle(AlwaysExpandOracle())
        request, database = positive_request
        oracle.decide(request, database)
        request, database = negative_request
        oracle.decide(request, database)
        assert oracle.positive_requests == 1
        assert oracle.negative_requests == 1
        assert oracle.total_requests == 2
        oracle.reset()
        assert oracle.total_requests == 0

    def test_callback_oracle_delegates(self, positive_request):
        request, database = positive_request
        seen = []

        def callback(req, view):
            seen.append(req)
            return ExpandOperation(req.frontier_tuples[0])

        oracle = CallbackOracle(callback)
        oracle.decide(request, database)
        assert seen == [request]

    def test_callback_oracle_propagates_errors(self, positive_request):
        request, database = positive_request

        def broken(req, view):
            raise OracleError("the human hung up")

        with pytest.raises(OracleError, match="hung up"):
            CallbackOracle(broken).decide(request, database)

        def crashing(req, view):
            raise ZeroDivisionError("bug in the callback")

        # Non-oracle exceptions must surface unchanged, not be swallowed.
        with pytest.raises(ZeroDivisionError):
            CallbackOracle(crashing).decide(request, database)


class TestDeferredOracle:
    def test_decide_parks_with_a_pending_decision(self, positive_request):
        request, database = positive_request
        oracle = DeferredOracle()
        with pytest.raises(FrontierPending) as excinfo:
            oracle.decide(request, database)
        decision = excinfo.value.decision
        assert decision.request is request
        assert decision.is_open
        assert oracle.pending() == [decision]

    def _park(self, oracle, request, database):
        with pytest.raises(FrontierPending) as excinfo:
            oracle.decide(request, database)
        return excinfo.value.decision

    def test_post_by_index_resolves_an_alternative(self, positive_request):
        request, database = positive_request
        oracle = DeferredOracle()
        decision = self._park(oracle, request, database)
        answered = oracle.post(decision.decision_id, 0)
        assert answered.answered
        assert answered.answer == request.alternatives()[0]
        assert oracle.pending() == []

    def test_post_by_operation(self, positive_request):
        request, database = positive_request
        oracle = DeferredOracle()
        decision = self._park(oracle, request, database)
        expand = ExpandOperation(request.frontier_tuples[0])
        assert oracle.post(decision.decision_id, expand).answer is expand

    def test_duplicate_answer_is_rejected(self, positive_request):
        request, database = positive_request
        oracle = DeferredOracle()
        decision = self._park(oracle, request, database)
        oracle.post(decision.decision_id, 0)
        with pytest.raises(OracleError, match="already answered"):
            oracle.post(decision.decision_id, 1)

    def test_unknown_decision_and_bad_index(self, positive_request):
        request, database = positive_request
        oracle = DeferredOracle()
        with pytest.raises(OracleError, match="unknown"):
            oracle.post(99, 0)
        decision = self._park(oracle, request, database)
        with pytest.raises(OracleError, match="alternatives"):
            oracle.post(decision.decision_id, len(request.alternatives()))

    def test_operation_for_a_different_question_is_rejected(
        self, positive_request, negative_request
    ):
        request, database = positive_request
        other_request, _ = negative_request
        oracle = DeferredOracle()
        decision = self._park(oracle, request, database)
        # An operation answering the *negative* request must not be accepted
        # as the answer to the positive one (and vice versa).
        foreign = other_request.alternatives()[0]
        with pytest.raises(OracleError, match="does not answer"):
            oracle.post(decision.decision_id, foreign)
        other_decision = self._park(oracle, other_request, database)
        with pytest.raises(OracleError, match="does not answer"):
            oracle.post(other_decision.decision_id, request.alternatives()[0])

    def test_negative_request_accepts_any_candidate_subset(self, negative_request):
        request, database = negative_request
        oracle = DeferredOracle()
        decision = self._park(oracle, request, database)
        subset = DeleteSubsetOperation(tuple(request.candidates[:2]))
        assert subset not in request.alternatives(), "larger than the menu"
        assert oracle.post(decision.decision_id, subset).answer is subset

    def test_cancelled_decision_rejects_late_answers(self, positive_request):
        request, database = positive_request
        oracle = DeferredOracle()
        decision = self._park(oracle, request, database)
        oracle.cancel(decision.decision_id)
        oracle.cancel(decision.decision_id)  # idempotent
        assert oracle.pending() == []
        with pytest.raises(OracleError, match="cancelled"):
            oracle.post(decision.decision_id, 0)

    def test_cancel_forwards_through_wrapping_oracles(self, positive_request):
        # An execution parked under CountingOracle(DeferredOracle()) must be
        # able to cancel its decision on abort through the wrapper.
        request, database = positive_request
        inner = DeferredOracle()
        wrapped = CountingOracle(inner)
        with pytest.raises(FrontierPending) as excinfo:
            wrapped.decide(request, database)
        wrapped.cancel(excinfo.value.decision.decision_id)
        assert inner.pending() == []
        with pytest.raises(OracleError, match="cancelled"):
            inner.post(excinfo.value.decision.decision_id, 0)

    def test_reset_forgets_everything(self, positive_request):
        request, database = positive_request
        oracle = DeferredOracle()
        self._park(oracle, request, database)
        oracle.reset()
        assert oracle.pending() == []
        fresh = self._park(oracle, request, database)
        assert fresh.decision_id == 1, "ids restart after reset"


class TestInteractiveOracle:
    def test_prompts_until_a_valid_choice(self, positive_request):
        request, database = positive_request
        answers = iter(["not a number", "999", "0"])
        outputs = []
        oracle = InteractiveOracle(
            input_function=lambda prompt: next(answers), echo=outputs.append
        )
        decision = oracle.decide(request, database)
        assert decision == request.alternatives()[0]
        assert any("Frontier reached" in line for line in outputs)
