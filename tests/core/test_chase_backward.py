"""Backward-chase tests: Example 2.3 and cascading deletions."""

import pytest

from repro.core import (
    ChaseConfig,
    ChaseEngine,
    DeleteOperation,
    InsertOperation,
    ScriptedOracle,
    parse_tgds,
    satisfies_all,
)
from repro.core.frontier import DeleteSubsetOperation, NegativeFrontierRequest
from repro.core.schema import DatabaseSchema
from repro.core.tuples import make_tuple
from repro.storage.memory import MemoryDatabase


def choose(relation_name):
    """A scripted negative-frontier decision targeting a given relation."""

    def decide(request, view):
        assert isinstance(request, NegativeFrontierRequest)
        for candidate in request.candidates:
            if candidate.relation == relation_name:
                return DeleteSubsetOperation((candidate,))
        return DeleteSubsetOperation((request.candidates[0],))

    return decide


class TestExample23:
    """Deleting the Geneva Winery review forces a choice between A and T."""

    def test_user_chooses_to_delete_the_tour(self, travel):
        database, mappings = travel
        engine = ChaseEngine(database, mappings, oracle=ScriptedOracle([choose("T")]))
        record = engine.run(
            DeleteOperation(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
        )
        assert record.terminated
        assert not record.is_positive
        assert not database.contains(make_tuple("T", "Geneva Winery", "XYZ", "Syracuse"))
        assert database.contains(make_tuple("A", "Geneva", "Geneva Winery"))
        assert satisfies_all(mappings, database)

    def test_user_chooses_to_delete_the_attraction(self, travel):
        database, mappings = travel
        engine = ChaseEngine(database, mappings, oracle=ScriptedOracle([choose("A")]))
        record = engine.run(
            DeleteOperation(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
        )
        assert record.terminated
        assert database.contains(make_tuple("T", "Geneva Winery", "XYZ", "Syracuse"))
        assert not database.contains(make_tuple("A", "Geneva", "Geneva Winery"))
        assert satisfies_all(mappings, database)

    def test_exactly_one_frontier_operation_needed(self, travel):
        database, mappings = travel
        engine = ChaseEngine(database, mappings, oracle=ScriptedOracle([choose("T")]))
        record = engine.run(
            DeleteOperation(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
        )
        assert record.frontier_operation_count == 1

    def test_deleting_a_tuple_nobody_depends_on_is_quiet(self, travel):
        database, mappings = travel
        engine = ChaseEngine(database, mappings)
        record = engine.run(
            DeleteOperation(make_tuple("E", "Science Conf", "Geneva Winery"))
        )
        assert record.terminated
        # E only occurs on the RHS of sigma4, whose LHS still matches, so a
        # violation does appear and must be repaired backward; the witness is
        # the V/T pair.
        assert record.frontier_operation_count <= 1
        assert satisfies_all(mappings, database)

    def test_deleting_missing_tuple_is_noop(self, travel):
        database, mappings = travel
        engine = ChaseEngine(database, mappings)
        record = engine.run(DeleteOperation(make_tuple("R", "nobody", "nothing", "n/a")))
        assert record.terminated
        assert record.write_count == 0


class TestCascadingDeletes:
    def _chain_repository(self):
        schema = DatabaseSchema.from_dict({"A": ["x"], "B": ["x"], "C": ["x"]})
        database = MemoryDatabase(schema)
        mappings = parse_tgds(["A(x) -> B(x)", "B(x) -> C(x)"])
        for relation in ("A", "B", "C"):
            database.insert(make_tuple(relation, "v"))
        return database, mappings

    def test_deletion_cascades_backward_through_the_chain(self):
        database, mappings = self._chain_repository()
        engine = ChaseEngine(database, mappings)
        record = engine.run(DeleteOperation(make_tuple("C", "v")))
        assert record.terminated
        # Deleting C(v) violates B(x) -> C(x); the only witness is B(v), which
        # is deleted deterministically; that in turn forces A(v) out.
        assert database.count("A") == 0
        assert database.count("B") == 0
        assert database.count("C") == 0
        assert satisfies_all(mappings, database)

    def test_deleting_the_middle_only_cascades_upstream(self):
        database, mappings = self._chain_repository()
        engine = ChaseEngine(database, mappings)
        engine.run(DeleteOperation(make_tuple("B", "v")))
        # A must go (its RHS match vanished); C stays (nothing requires its removal).
        assert database.count("A") == 0
        assert database.count("C") == 1
        assert satisfies_all(mappings, database)

    def test_backward_chase_always_terminates(self):
        # The backward chase can never delete more tuples than exist.
        database, mappings = self._chain_repository()
        engine = ChaseEngine(
            database, mappings, config=ChaseConfig(max_steps=50, raise_on_budget=True)
        )
        record = engine.run(DeleteOperation(make_tuple("C", "v")))
        assert record.terminated
