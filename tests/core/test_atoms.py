"""Unit tests for relational atoms: matching, instantiation, renaming."""

import pytest

from repro.core.atoms import Atom, AtomError, atoms_relations, atoms_variables
from repro.core.terms import Constant, LabeledNull, Variable
from repro.core.tuples import make_tuple


class TestAtomConstruction:
    def test_lowercase_strings_become_variables(self):
        atom = Atom("T", ["n", "c", "cs"])
        assert atom.variables() == (Variable("n"), Variable("c"), Variable("cs"))

    def test_explicit_terms_pass_through(self):
        atom = Atom("C", [Variable("c")])
        assert atom.terms == (Variable("c"),)
        atom = Atom("C", [Constant("Ithaca")])
        assert atom.constants() == (Constant("Ithaca"),)

    def test_uppercase_strings_become_constants(self):
        atom = Atom("C", ["Ithaca"])
        assert atom.constants() == (Constant("Ithaca"),)

    def test_variable_positions(self):
        atom = Atom("S", ["a", "c", "c"])
        assert atom.positions_of(Variable("c")) == [1, 2]

    def test_equality_and_hash(self):
        assert Atom("C", ["c"]) == Atom("C", ["c"])
        assert Atom("C", ["c"]) != Atom("C", ["d"])
        assert hash(Atom("C", ["c"])) == hash(Atom("C", ["c"]))


class TestInstantiate:
    def test_instantiation_builds_tuple(self):
        atom = Atom("R", ["c", "n", "r"])
        assignment = {
            Variable("c"): Constant("ABC"),
            Variable("n"): Constant("Falls"),
            Variable("r"): LabeledNull("x3"),
        }
        assert atom.instantiate(assignment) == make_tuple(
            "R", "ABC", "Falls", LabeledNull("x3")
        )

    def test_missing_binding_raises(self):
        atom = Atom("C", ["c"])
        with pytest.raises(AtomError):
            atom.instantiate({})

    def test_constants_pass_through(self):
        atom = Atom("C", [Constant("Ithaca")])
        assert atom.instantiate({}) == make_tuple("C", "Ithaca")


class TestMatch:
    def test_simple_match_binds_variables(self):
        atom = Atom("T", ["n", "c", "cs"])
        row = make_tuple("T", "Falls", "ABC", "Toronto")
        assignment = atom.match(row)
        assert assignment == {
            Variable("n"): Constant("Falls"),
            Variable("c"): Constant("ABC"),
            Variable("cs"): Constant("Toronto"),
        }

    def test_match_respects_existing_bindings(self):
        atom = Atom("T", ["n", "c", "cs"])
        row = make_tuple("T", "Falls", "ABC", "Toronto")
        assert atom.match(row, {Variable("n"): Constant("Falls")}) is not None
        assert atom.match(row, {Variable("n"): Constant("Other")}) is None

    def test_match_does_not_mutate_input_assignment(self):
        atom = Atom("C", ["c"])
        seed = {}
        atom.match(make_tuple("C", "Ithaca"), seed)
        assert seed == {}

    def test_repeated_variable_requires_equal_values(self):
        atom = Atom("S", ["a", "c", "c"])
        assert atom.match(make_tuple("S", "SYR", "Syracuse", "Syracuse")) is not None
        assert atom.match(make_tuple("S", "SYR", "Syracuse", "Ithaca")) is None

    def test_constant_in_atom_must_equal_row_value(self):
        atom = Atom("C", [Constant("Ithaca")])
        assert atom.match(make_tuple("C", "Ithaca")) == {}
        assert atom.match(make_tuple("C", "Syracuse")) is None

    def test_labeled_null_in_row_does_not_match_constant_in_atom(self):
        atom = Atom("C", [Constant("Ithaca")])
        assert atom.match(make_tuple("C", LabeledNull("x"))) is None

    def test_wrong_relation_or_arity(self):
        atom = Atom("C", ["c"])
        assert atom.match(make_tuple("D", "a")) is None
        assert atom.match(make_tuple("C", "a", "b")) is None


class TestRenameAndHelpers:
    def test_rename(self):
        atom = Atom("T", ["n", "c", "cs"])
        renamed = atom.rename({Variable("n"): Variable("m")})
        assert renamed.variables() == (Variable("m"), Variable("c"), Variable("cs"))

    def test_atoms_variables_and_relations(self):
        atoms = [Atom("A", ["l", "n"]), Atom("T", ["n", "c", "cs"])]
        assert atoms_variables(atoms) == {
            Variable("l"),
            Variable("n"),
            Variable("c"),
            Variable("cs"),
        }
        assert atoms_relations(atoms) == {"A", "T"}
