"""Forward-chase tests: Example 1.1, the JFK/NYC cycle of Section 2.2, null replacement."""

import pytest

from repro.core import (
    AlwaysUnifyOracle,
    ChaseConfig,
    ChaseEngine,
    InsertOperation,
    NullReplacementOperation,
    RandomOracle,
    ScriptedOracle,
    satisfies_all,
)
from repro.core.frontier import PositiveFrontierRequest, UnifyOperation
from repro.core.terms import LabeledNull
from repro.core.tuples import make_tuple
from repro.core.update import UpdateStatus


class TestExample11:
    """Example 1.1: a new tour generates a review tuple with a labeled null."""

    def test_new_tour_generates_review_with_fresh_null(self, travel_engine):
        engine = travel_engine
        record = engine.run(
            InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))
        )
        assert record.terminated
        assert record.status is UpdateStatus.TERMINATED
        assert record.frontier_operation_count == 0
        reviews = list(engine.database.tuples("R"))
        generated = [
            row
            for row in reviews
            if row.values[0] == make_tuple("R", "ABC Tours", "x", "y").values[0]
            and row.values[1] == make_tuple("R", "x", "Niagara Falls", "y").values[1]
        ]
        assert len(generated) == 1
        assert generated[0].values[2].is_null
        # Figure 2 already uses x1 and x2, so the fresh review null is x3.
        assert generated[0].values[2] == LabeledNull("x3")

    def test_database_satisfies_mappings_after_chase(self, travel_engine):
        engine = travel_engine
        engine.run(InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")))
        assert satisfies_all(engine.mappings, engine.database)

    def test_update_record_counts_writes(self, travel_engine):
        record = travel_engine.run(
            InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))
        )
        # The initial insert plus the generated review tuple.
        assert record.write_count == 2
        assert record.is_positive

    def test_inserting_existing_tuple_is_a_noop(self, travel_engine):
        record = travel_engine.run(InsertOperation(make_tuple("C", "Ithaca")))
        assert record.terminated
        assert record.write_count == 0


class TestCycleOfSection22:
    """Inserting S(JFK, NYC, Ithaca) would loop forever under the standard chase."""

    def test_chase_stops_at_frontier_instead_of_looping(self, travel):
        database, mappings = travel
        decisions = []

        def unify_city(request, view):
            assert isinstance(request, PositiveFrontierRequest)
            for frontier_tuple in request.frontier_tuples:
                if frontier_tuple.candidates:
                    decisions.append(frontier_tuple.row)
                    return UnifyOperation(frontier_tuple, frontier_tuple.candidates[0])
            raise AssertionError("expected a unification candidate")

        engine = ChaseEngine(database, mappings, oracle=ScriptedOracle([unify_city] * 3))
        record = engine.run(InsertOperation(make_tuple("S", "JFK", "NYC", "Ithaca")))
        assert record.terminated
        assert satisfies_all(mappings, database)
        # The deterministic stratum inserted C(NYC) and a suggested airport for
        # NYC before stopping: exactly the paper's narrative.
        assert database.contains(make_tuple("C", "NYC"))
        assert record.frontier_operation_count >= 1
        # The ambiguous tuple was a city tuple whose value was a labeled null.
        assert decisions and decisions[0].relation == "C"
        assert decisions[0].values[0].is_null

    def test_random_oracle_always_terminates_on_cyclic_mappings(self, travel):
        database, mappings = travel
        engine = ChaseEngine(
            database,
            mappings,
            oracle=RandomOracle(seed=5),
            config=ChaseConfig(max_steps=500, max_frontier_operations=500),
        )
        record = engine.run(InsertOperation(make_tuple("S", "JFK", "NYC", "Ithaca")))
        assert record.terminated
        assert satisfies_all(mappings, database)


class TestNullReplacement:
    def test_replacement_applies_to_every_occurrence(self, travel_engine):
        engine = travel_engine
        record = engine.run(NullReplacementOperation(LabeledNull("x1"), "ABC Tours"))
        assert record.terminated
        database = engine.database
        assert database.contains(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))
        assert database.contains(
            make_tuple("R", "ABC Tours", "Niagara Falls", LabeledNull("x2"))
        )
        assert not any(
            row.contains_null(LabeledNull("x1"))
            for relation in database.relations()
            for row in database.tuples(relation)
        )

    def test_replacement_cannot_violate_sigma3(self, travel_engine):
        engine = travel_engine
        engine.run(NullReplacementOperation(LabeledNull("x1"), "ABC Tours"))
        assert satisfies_all(engine.mappings, engine.database)

    def test_replacing_unknown_null_is_a_noop(self, travel_engine):
        record = travel_engine.run(NullReplacementOperation(LabeledNull("zz"), "value"))
        assert record.terminated
        assert record.write_count == 0


class TestBudgets:
    def test_step_budget_stops_runaway_chase(self, genealogy):
        from repro.core import AlwaysExpandOracle

        database, mappings = genealogy
        engine = ChaseEngine(
            database,
            mappings,
            oracle=AlwaysExpandOracle(),
            config=ChaseConfig(max_frontier_operations=3),
        )
        record = engine.run(InsertOperation(make_tuple("Person", "John")))
        assert not record.terminated
        assert record.frontier_operation_count == 3

    def test_budget_can_raise(self, genealogy):
        from repro.core import AlwaysExpandOracle
        from repro.core.chase import ChaseBudgetExceeded

        database, mappings = genealogy
        engine = ChaseEngine(
            database,
            mappings,
            oracle=AlwaysExpandOracle(),
            config=ChaseConfig(max_frontier_operations=2, raise_on_budget=True),
        )
        with pytest.raises(ChaseBudgetExceeded):
            engine.run(InsertOperation(make_tuple("Person", "John")))


class TestProvenance:
    def test_provenance_tree_records_chain_of_causes(self, travel_engine):
        engine = travel_engine
        engine.run(InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")))
        tree = engine.last_provenance
        assert tree is not None
        text = tree.to_text()
        assert "insert T(Niagara Falls, ABC Tours, Toronto)" in text
        assert "sigma3" in text
        assert "insert R(ABC Tours, Niagara Falls" in text

    def test_provenance_can_be_disabled(self, travel):
        database, mappings = travel
        engine = ChaseEngine(
            database,
            mappings,
            oracle=AlwaysUnifyOracle(),
            config=ChaseConfig(track_provenance=False),
        )
        engine.run(InsertOperation(make_tuple("C", "Corning")))
        assert engine.last_provenance is None
