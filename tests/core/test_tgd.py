"""Unit tests for tgds: parsing, structure, validation, cycles, weak acyclicity."""

import pytest

from repro.core.schema import DatabaseSchema, SchemaError
from repro.core.tgd import (
    MappingGraph,
    MappingSet,
    Tgd,
    TgdError,
    is_weakly_acyclic,
    parse_tgd,
    parse_tgds,
)
from repro.core.terms import Constant, Variable
from repro.fixtures import travel_mappings, travel_schema


class TestParsing:
    def test_simple_tgd(self):
        tgd = parse_tgd("C(c) -> exists a, l . S(a, l, c)", name="sigma1")
        assert tgd.name == "sigma1"
        assert [atom.relation for atom in tgd.lhs] == ["C"]
        assert [atom.relation for atom in tgd.rhs] == ["S"]
        assert tgd.existential_variables() == {Variable("a"), Variable("l")}
        assert tgd.frontier_variables() == {Variable("c")}

    def test_implicit_existentials(self):
        tgd = parse_tgd("A(l, n), T(n, c, cs) -> R(c, n, r)")
        assert tgd.existential_variables() == {Variable("r")}

    def test_constants_are_parsed(self):
        tgd = parse_tgd("C('Ithaca') -> S(a, l, 'Ithaca')")
        assert Constant("Ithaca") in tgd.lhs[0].constants()
        assert Constant("Ithaca") in tgd.rhs[0].constants()

    def test_integer_constants(self):
        tgd = parse_tgd("P(5, x) -> Q(x)")
        assert Constant(5) in tgd.lhs[0].constants()

    def test_multiple_rhs_atoms(self):
        tgd = parse_tgd("Person(x) -> exists y . Father(x, y), Person(y)")
        assert len(tgd.rhs) == 2
        assert tgd.existential_variables() == {Variable("y")}

    def test_missing_arrow_rejected(self):
        with pytest.raises(TgdError):
            parse_tgd("C(c), S(a, l, c)")

    def test_bad_exists_clause_rejected(self):
        with pytest.raises(TgdError):
            parse_tgd("C(c) -> exists a S(a, l, c)")
        with pytest.raises(TgdError):
            parse_tgd("C(c) -> exists c . S(a, l, c)")

    def test_garbage_atoms_rejected(self):
        with pytest.raises(TgdError):
            parse_tgd("C(c -> S(a)")
        with pytest.raises(TgdError):
            parse_tgd("C() -> S(a)")

    def test_parse_tgds_names_in_order(self):
        tgds = parse_tgds(["C(c) -> D(c)", "D(c) -> E(c)"])
        assert [tgd.name for tgd in tgds] == ["sigma1", "sigma2"]

    def test_round_trip_through_to_string(self):
        original = parse_tgd("A(l, n), T(n, c, cs) -> exists r . R(c, n, r)")
        reparsed = parse_tgd(original.to_string())
        assert reparsed == original


class TestStructure:
    def test_sides_must_be_nonempty(self):
        with pytest.raises(TgdError):
            Tgd([], [parse_tgd("C(c) -> D(c)").rhs[0]])
        with pytest.raises(TgdError):
            Tgd([parse_tgd("C(c) -> D(c)").lhs[0]], [])

    def test_relations_and_self_join(self):
        tgd = parse_tgd("E(x, y), E(y, z) -> E(x, z)")
        assert tgd.lhs_relations() == {"E"}
        assert tgd.has_self_join()
        assert tgd.is_full()

    def test_full_vs_existential(self):
        assert parse_tgd("C(c) -> D(c)").is_full()
        assert not parse_tgd("C(c) -> exists z . D(z)").is_full()

    def test_equality_ignores_name(self):
        first = parse_tgd("C(c) -> D(c)", name="a")
        second = parse_tgd("C(c) -> D(c)", name="b")
        assert first == second
        assert hash(first) == hash(second)


class TestValidation:
    def test_travel_mappings_validate(self):
        travel_mappings().validate(travel_schema())

    def test_unknown_relation_rejected(self):
        schema = DatabaseSchema.from_dict({"C": ["city"]})
        tgd = parse_tgd("C(c) -> D(c)")
        with pytest.raises(SchemaError):
            tgd.validate(schema)

    def test_wrong_arity_rejected(self):
        schema = DatabaseSchema.from_dict({"C": ["city"], "D": ["a", "b"]})
        tgd = parse_tgd("C(c) -> D(c)")
        with pytest.raises(SchemaError):
            tgd.validate(schema)


class TestMappingGraphAndCycles:
    def test_travel_mappings_form_a_cycle(self):
        mappings = travel_mappings()
        assert mappings.has_cycle()
        cycles = mappings.graph().cycles()
        assert any(set(cycle) == {"C", "S"} for cycle in cycles)

    def test_acyclic_mappings(self):
        mappings = MappingSet(parse_tgds(["A(x) -> B(x)", "B(x) -> C(x)"]))
        assert not mappings.has_cycle()

    def test_self_loop_counts_as_cycle(self):
        mappings = MappingSet([parse_tgd("Person(x) -> exists y . Father(x, y), Person(y)")])
        assert mappings.has_cycle()

    def test_graph_nodes_and_successors(self):
        graph = MappingGraph.from_tgds(parse_tgds(["A(x) -> B(x)", "B(x) -> C(x)"]))
        assert graph.nodes() == {"A", "B", "C"}
        assert graph.successors("A") == {"B"}
        assert graph.successors("C") == frozenset()

    def test_mappings_reading_and_writing(self):
        mappings = travel_mappings()
        reading_t = {tgd.name for tgd in mappings.mappings_reading("T")}
        assert reading_t == {"sigma3", "sigma4"}
        writing_c = {tgd.name for tgd in mappings.mappings_writing("C")}
        assert writing_c == {"sigma2"}

    def test_by_name(self):
        mappings = travel_mappings()
        assert mappings.by_name("sigma3").rhs_relations() == {"R"}
        with pytest.raises(KeyError):
            mappings.by_name("sigma9")


class TestWeakAcyclicity:
    def test_acyclic_full_tgds_are_weakly_acyclic(self):
        assert is_weakly_acyclic(parse_tgds(["A(x) -> B(x)", "B(x) -> C(x)"]))

    def test_genealogy_tgd_is_not_weakly_acyclic(self):
        tgds = [parse_tgd("Person(x) -> exists y . Father(x, y), Person(y)")]
        assert not is_weakly_acyclic(tgds)

    def test_travel_mappings_are_not_weakly_acyclic(self):
        # sigma1/sigma2 form a cycle through an existential position, which is
        # exactly what classical update exchange systems forbid and Youtopia allows.
        assert not travel_mappings().is_weakly_acyclic()

    def test_cycle_without_existentials_is_weakly_acyclic(self):
        tgds = parse_tgds(["A(x) -> B(x)", "B(x) -> A(x)"])
        assert is_weakly_acyclic(tgds)
