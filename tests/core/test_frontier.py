"""Unit tests for repair planning, frontier tuples and frontier operations."""

import pytest

from repro.core.frontier import (
    DeleteSubsetOperation,
    DeterministicRepair,
    ExpandOperation,
    FrontierError,
    NegativeFrontierRequest,
    PositiveFrontierRequest,
    UnifyOperation,
    plan_backward_repair,
    plan_forward_repair,
    plan_repair,
    writes_for_operation,
)
from repro.core.terms import LabeledNull, NullFactory
from repro.core.tuples import make_tuple
from repro.core.violations import violations_for_write
from repro.core.writes import WriteKind, delete, insert
from repro.fixtures import genealogy_repository


def _lhs_violation_after_insert(database, mappings, row):
    database.insert(row)
    violations = violations_for_write(insert(row), list(mappings), database)
    assert violations, "expected the insert to create a violation"
    return violations[0]


def _rhs_violation_after_delete(database, mappings, row):
    database.delete(row)
    violations = violations_for_write(delete(row), list(mappings), database)
    assert violations, "expected the delete to create a violation"
    return violations[0]


class TestForwardPlanning:
    def test_deterministic_repair_when_no_more_specific_tuple_exists(self, travel):
        database, mappings = travel
        violation = _lhs_violation_after_insert(
            database, mappings, make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        )
        plan = plan_forward_repair(violation, database, NullFactory(prefix="f"))
        assert isinstance(plan, DeterministicRepair)
        assert len(plan.writes) == 1
        write = plan.writes[0]
        assert write.kind is WriteKind.INSERT
        assert write.row.relation == "R"
        assert write.row.values[0].value == "ABC Tours"
        assert write.row.values[2].is_null

    def test_frontier_when_more_specific_tuple_exists(self):
        database, mappings = genealogy_repository()
        violation = _lhs_violation_after_insert(
            database, mappings, make_tuple("Person", "John")
        )
        plan = plan_forward_repair(violation, database, NullFactory(prefix="f"))
        assert isinstance(plan, PositiveFrontierRequest)
        rows = {frontier.row.relation for frontier in plan.frontier_tuples}
        assert rows == {"Father", "Person"}
        person_frontier = next(
            frontier for frontier in plan.frontier_tuples if frontier.row.relation == "Person"
        )
        assert make_tuple("Person", "John") in person_frontier.candidates

    def test_frontier_tuples_of_one_firing_share_fresh_nulls(self):
        database, mappings = genealogy_repository()
        violation = _lhs_violation_after_insert(
            database, mappings, make_tuple("Person", "John")
        )
        plan = plan_forward_repair(violation, database, NullFactory(prefix="f"))
        all_fresh = set()
        for frontier in plan.frontier_tuples:
            all_fresh.update(frontier.fresh_nulls)
        assert len(all_fresh) == 1
        shared = next(iter(all_fresh))
        father = next(f for f in plan.frontier_tuples if f.row.relation == "Father")
        person = next(f for f in plan.frontier_tuples if f.row.relation == "Person")
        assert father.row.contains_null(shared)
        assert person.row.contains_null(shared)

    def test_plan_returns_none_when_violation_already_repaired(self, travel):
        database, mappings = travel
        violation = _lhs_violation_after_insert(
            database, mappings, make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        )
        database.insert(make_tuple("R", "ABC Tours", "Niagara Falls", "Fine"))
        assert plan_forward_repair(violation, database, NullFactory()) is None

    def test_recorder_sees_more_specific_queries(self):
        database, mappings = genealogy_repository()
        violation = _lhs_violation_after_insert(
            database, mappings, make_tuple("Person", "John")
        )
        seen = []
        plan_forward_repair(
            violation, database, NullFactory(prefix="f"), recorder=lambda q, a: seen.append(q.kind)
        )
        assert "more-specific" in seen


class TestBackwardPlanning:
    def test_negative_frontier_with_two_candidates(self, travel):
        database, mappings = travel
        violation = _rhs_violation_after_delete(
            database, mappings, make_tuple("R", "XYZ", "Geneva Winery", "Great!")
        )
        plan = plan_backward_repair(violation, database)
        assert isinstance(plan, NegativeFrontierRequest)
        assert set(plan.candidates) == {
            make_tuple("A", "Geneva", "Geneva Winery"),
            make_tuple("T", "Geneva Winery", "XYZ", "Syracuse"),
        }
        assert len(plan.alternatives()) == 2

    def test_deterministic_delete_with_single_witness(self):
        from repro.core import parse_tgds
        from repro.core.schema import DatabaseSchema
        from repro.storage.memory import MemoryDatabase

        schema = DatabaseSchema.from_dict({"A": ["x"], "B": ["x"]})
        database = MemoryDatabase(schema)
        database.insert(make_tuple("A", "v"))
        database.insert(make_tuple("B", "v"))
        mappings = parse_tgds(["A(x) -> B(x)"])
        violation = _rhs_violation_after_delete(database, mappings, make_tuple("B", "v"))
        plan = plan_backward_repair(violation, database)
        assert isinstance(plan, DeterministicRepair)
        assert [write.kind for write in plan.writes] == [WriteKind.DELETE]
        assert plan.writes[0].row == make_tuple("A", "v")

    def test_plan_repair_dispatches_on_kind(self, travel):
        database, mappings = travel
        lhs_violation = _lhs_violation_after_insert(
            database, mappings, make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        )
        assert isinstance(
            plan_repair(lhs_violation, database, NullFactory()), DeterministicRepair
        )


class TestWritesForOperations:
    def test_expand_inserts_the_frontier_tuple(self):
        database, mappings = genealogy_repository()
        violation = _lhs_violation_after_insert(
            database, mappings, make_tuple("Person", "John")
        )
        plan = plan_forward_repair(violation, database, NullFactory(prefix="f"))
        father = next(f for f in plan.frontier_tuples if f.row.relation == "Father")
        writes = writes_for_operation(ExpandOperation(father), database)
        assert len(writes) == 1
        assert writes[0].kind is WriteKind.INSERT
        assert writes[0].row == father.row

    def test_unify_rewrites_every_occurrence_of_the_nulls(self):
        database, mappings = genealogy_repository()
        violation = _lhs_violation_after_insert(
            database, mappings, make_tuple("Person", "John")
        )
        plan = plan_forward_repair(violation, database, NullFactory(prefix="f"))
        father = next(f for f in plan.frontier_tuples if f.row.relation == "Father")
        person = next(f for f in plan.frontier_tuples if f.row.relation == "Person")
        # Expand the father tuple, then unify the person frontier tuple with
        # Person(John): the shared null inside the stored Father tuple must be
        # rewritten.
        for write in writes_for_operation(ExpandOperation(father), database):
            database.insert(write.row)
        writes = writes_for_operation(
            UnifyOperation(person, make_tuple("Person", "John")), database
        )
        assert len(writes) == 1
        write = writes[0]
        assert write.kind is WriteKind.MODIFY
        assert write.old_row == father.row
        assert write.row == make_tuple("Father", "John", "John")

    def test_unify_with_no_stored_occurrences_produces_no_writes(self):
        database, mappings = genealogy_repository()
        violation = _lhs_violation_after_insert(
            database, mappings, make_tuple("Person", "John")
        )
        plan = plan_forward_repair(violation, database, NullFactory(prefix="f"))
        person = next(f for f in plan.frontier_tuples if f.row.relation == "Person")
        writes = writes_for_operation(
            UnifyOperation(person, make_tuple("Person", "John")), database
        )
        assert writes == []

    def test_delete_subset_produces_deletes(self, travel):
        database, mappings = travel
        violation = _rhs_violation_after_delete(
            database, mappings, make_tuple("R", "XYZ", "Geneva Winery", "Great!")
        )
        plan = plan_backward_repair(violation, database)
        chosen = plan.candidates[0]
        writes = writes_for_operation(DeleteSubsetOperation((chosen,)), database)
        assert [write.kind for write in writes] == [WriteKind.DELETE]
        assert writes[0].row == chosen

    def test_empty_delete_subset_rejected(self):
        with pytest.raises(FrontierError):
            writes_for_operation(DeleteSubsetOperation(()), None)

    def test_alternatives_enumerate_expand_and_unifications(self):
        database, mappings = genealogy_repository()
        violation = _lhs_violation_after_insert(
            database, mappings, make_tuple("Person", "John")
        )
        plan = plan_forward_repair(violation, database, NullFactory(prefix="f"))
        alternatives = plan.alternatives()
        kinds = [type(alternative).__name__ for alternative in alternatives]
        assert kinds.count("ExpandOperation") == len(plan.frontier_tuples)
        assert kinds.count("UnifyOperation") == sum(
            len(frontier.candidates) for frontier in plan.frontier_tuples
        )
