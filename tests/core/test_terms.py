"""Unit tests for terms: constants, labeled nulls, variables, the null factory."""

import pytest
from hypothesis import given, strategies as st

from repro.core.terms import (
    Constant,
    LabeledNull,
    NullFactory,
    Variable,
    as_data_term,
    is_constant,
    is_null,
    is_variable,
)


class TestTermBasics:
    def test_constant_equality_by_value(self):
        assert Constant("Ithaca") == Constant("Ithaca")
        assert Constant("Ithaca") != Constant("Syracuse")
        assert Constant(1) != Constant("1")

    def test_labeled_null_equality_by_name(self):
        assert LabeledNull("x1") == LabeledNull("x1")
        assert LabeledNull("x1") != LabeledNull("x2")

    def test_constant_and_null_never_equal(self):
        assert Constant("x1") != LabeledNull("x1")

    def test_kind_predicates(self):
        assert is_constant(Constant("a"))
        assert not is_constant(LabeledNull("a"))
        assert is_null(LabeledNull("a"))
        assert not is_null(Constant("a"))
        assert is_variable(Variable("a"))
        assert not is_variable(Constant("a"))

    def test_is_null_property(self):
        assert LabeledNull("x").is_null
        assert not Constant("x").is_null
        assert not Variable("x").is_null

    def test_terms_are_hashable_and_usable_in_sets(self):
        items = {Constant("a"), Constant("a"), LabeledNull("a"), Variable("a")}
        assert len(items) == 3

    def test_string_rendering(self):
        assert str(Constant("Ithaca")) == "Ithaca"
        assert str(LabeledNull("x3")) == "#x3"
        assert str(Variable("c")) == "?c"


class TestAsDataTerm:
    def test_wraps_raw_values_as_constants(self):
        assert as_data_term("hello") == Constant("hello")
        assert as_data_term(5) == Constant(5)

    def test_passes_terms_through(self):
        null = LabeledNull("x9")
        assert as_data_term(null) is null
        constant = Constant("a")
        assert as_data_term(constant) is constant

    def test_rejects_variables(self):
        with pytest.raises(TypeError):
            as_data_term(Variable("v"))


class TestNullFactory:
    def test_fresh_nulls_are_distinct(self):
        factory = NullFactory()
        first, second = factory.fresh(), factory.fresh()
        assert first != second

    def test_prefix_and_numbering(self):
        factory = NullFactory(prefix="n", start=5)
        assert factory.fresh() == LabeledNull("n5")
        assert factory.fresh() == LabeledNull("n6")
        assert factory.prefix == "n"

    def test_fresh_many(self):
        factory = NullFactory()
        batch = factory.fresh_many(4)
        assert len(batch) == 4
        assert len(set(batch)) == 4

    def test_avoiding_skips_existing_names(self):
        factory = NullFactory.avoiding(["x1", "x7", "y3", "other"], prefix="x")
        assert factory.fresh() == LabeledNull("x8")

    def test_avoiding_ignores_foreign_prefixes(self):
        factory = NullFactory.avoiding(["y10"], prefix="x")
        assert factory.fresh() == LabeledNull("x1")

    def test_avoiding_view_uses_database_nulls(self, travel_db):
        factory = NullFactory.avoiding_view(travel_db)
        fresh = factory.fresh()
        existing = {
            null
            for relation in travel_db.relations()
            for row in travel_db.tuples(relation)
            for null in row.null_set()
        }
        assert fresh not in existing
        assert fresh == LabeledNull("x3")

    @given(st.integers(min_value=1, max_value=50))
    def test_factory_never_repeats(self, count):
        factory = NullFactory(prefix="p")
        produced = [factory.fresh() for _ in range(count)]
        assert len(set(produced)) == count
