"""Unit tests for violation detection (Definitions 2.1 / 2.2) on Figure 2."""

import pytest

from repro.core.terms import LabeledNull, Variable
from repro.core.tuples import make_tuple
from repro.core.violations import (
    ViolationKind,
    find_all_violations,
    satisfies_all,
    violation_queries_for_write,
    violations_for_write,
    violations_for_writes,
)
from repro.core.writes import delete, insert, modify
from repro.fixtures import travel_mappings


class TestFullDetection:
    def test_figure_2_repository_satisfies_all_mappings(self, travel):
        database, mappings = travel
        assert satisfies_all(mappings, database)
        assert find_all_violations(mappings, database) == []

    def test_removing_a_review_creates_a_violation(self, travel):
        database, mappings = travel
        database.delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
        violations = find_all_violations(mappings, database)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.tgd.name == "sigma3"
        witness_relations = {row.relation for row in violation.witness}
        assert witness_relations == {"A", "T"}

    def test_adding_an_unreviewed_tour_creates_a_violation(self, travel):
        database, mappings = travel
        database.insert(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))
        violations = find_all_violations(mappings, database)
        assert any(violation.tgd.name == "sigma3" for violation in violations)


class TestIncrementalDetection:
    def test_insert_seeds_lhs_violation(self, travel):
        database, mappings = travel
        new_tour = make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        database.insert(new_tour)
        violations = violations_for_write(insert(new_tour), list(mappings), database)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.kind is ViolationKind.LHS
        assert violation.is_lhs() and not violation.is_rhs()
        assert new_tour in violation.witness

    def test_delete_seeds_rhs_violation(self, travel):
        database, mappings = travel
        removed = make_tuple("R", "XYZ", "Geneva Winery", "Great!")
        database.delete(removed)
        violations = violations_for_write(delete(removed), list(mappings), database)
        assert len(violations) == 1
        assert violations[0].kind is ViolationKind.RHS
        assert violations[0].tgd.name == "sigma3"

    def test_insert_without_violation_reports_nothing(self, travel):
        database, mappings = travel
        new_city_airport = make_tuple("A", "Corning", "Glass Museum")
        database.insert(new_city_airport)
        # There is no tour of the Glass Museum, so sigma3 does not fire.
        assert violations_for_write(insert(new_city_airport), list(mappings), database) == []

    def test_null_replacement_modification_causes_no_violation(self, travel):
        database, mappings = travel
        # Replace x1 (the unknown tour company) consistently in T and R; the
        # paper notes this cannot violate sigma3 because both occurrences change.
        x1 = LabeledNull("x1")
        modified = database.replace_null(x1, make_tuple("C", "ABC Tours").values[0])
        writes = [
            modify(row.substitute({}), row, x1, make_tuple("C", "ABC Tours").values[0])
            for row in modified
        ]
        assert violations_for_writes(writes, list(mappings), database) == []

    def test_modify_write_only_checked_against_lhs(self, travel):
        database, mappings = travel
        old_row = make_tuple("R", LabeledNull("x1"), "Niagara Falls", LabeledNull("x2"))
        new_row = make_tuple("R", "ABC Tours", "Niagara Falls", LabeledNull("x2"))
        write = modify(old_row, new_row, LabeledNull("x1"), new_row.values[0])
        queries = violation_queries_for_write(write, list(mappings))
        assert all(kind is ViolationKind.LHS for _, kind in queries)

    def test_recorder_sees_every_violation_query(self, travel):
        database, mappings = travel
        new_tour = make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        database.insert(new_tour)
        seen = []
        violations_for_write(
            insert(new_tour), list(mappings), database, recorder=lambda q, a: seen.append(q)
        )
        # T occurs on the LHS of sigma3 and sigma4: two violation queries.
        assert len(seen) == 2
        assert {query.tgd.name for query in seen} == {"sigma3", "sigma4"}


class TestViolationObject:
    def test_still_holds_tracks_repairs(self, travel):
        database, mappings = travel
        new_tour = make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        database.insert(new_tour)
        violation = violations_for_write(insert(new_tour), list(mappings), database)[0]
        assert violation.still_holds(database)
        database.insert(make_tuple("R", "ABC Tours", "Niagara Falls", "Amazing"))
        assert not violation.still_holds(database)

    def test_still_holds_false_when_witness_removed(self, travel):
        database, mappings = travel
        new_tour = make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        database.insert(new_tour)
        violation = violations_for_write(insert(new_tour), list(mappings), database)[0]
        database.delete(new_tour)
        assert not violation.still_holds(database)

    def test_exported_assignment_restricted_to_frontier_variables(self, travel):
        database, mappings = travel
        new_tour = make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        database.insert(new_tour)
        violation = violations_for_write(insert(new_tour), list(mappings), database)[0]
        exported = violation.exported_assignment()
        assert set(exported) == violation.tgd.frontier_variables()

    def test_describe_mentions_mapping_and_witness(self, travel):
        database, mappings = travel
        removed = make_tuple("R", "XYZ", "Geneva Winery", "Great!")
        database.delete(removed)
        violation = violations_for_write(delete(removed), list(mappings), database)[0]
        text = violation.describe()
        assert "sigma3" in text
        assert "RHS" in text
