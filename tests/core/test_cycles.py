"""Cyclic-mapping behaviour: controlled non-termination and stratum termination."""

import pytest

from repro.core import (
    AlwaysExpandOracle,
    AlwaysUnifyOracle,
    ChaseConfig,
    ChaseEngine,
    InsertOperation,
    RandomOracle,
    satisfies_all,
)
from repro.core.tuples import make_tuple


class TestGenealogy:
    """Person(x) -> exists y . Father(x, y), Person(y): allowed, controlled."""

    def test_expanding_user_keeps_adding_ancestors(self, genealogy):
        database, mappings = genealogy
        engine = ChaseEngine(
            database,
            mappings,
            oracle=AlwaysExpandOracle(),
            config=ChaseConfig(max_frontier_operations=6),
        )
        record = engine.run(InsertOperation(make_tuple("Person", "John")))
        # Non-termination is controlled: the chase only advances one frontier
        # operation at a time, so the budget bounds the growth.
        assert not record.terminated
        assert database.count("Person") >= 2
        assert database.count("Father") >= 2

    def test_unifying_user_terminates_immediately(self, genealogy):
        database, mappings = genealogy
        engine = ChaseEngine(database, mappings, oracle=AlwaysUnifyOracle())
        record = engine.run(InsertOperation(make_tuple("Person", "John")))
        assert record.terminated
        assert database.contains(make_tuple("Father", "John", "John"))
        assert satisfies_all(mappings, database)

    def test_random_user_terminates_with_probability_one(self, genealogy):
        database, mappings = genealogy
        engine = ChaseEngine(
            database,
            mappings,
            oracle=RandomOracle(seed=11),
            config=ChaseConfig(max_frontier_operations=500, max_steps=2000),
        )
        record = engine.run(InsertOperation(make_tuple("Person", "John")))
        assert record.terminated
        assert satisfies_all(mappings, database)

    def test_deterministic_stratum_stops_after_first_firing(self, genealogy):
        """Lemma 2.5: the chase stops along all paths without human input."""
        database, mappings = genealogy
        engine = ChaseEngine(
            database,
            mappings,
            oracle=AlwaysExpandOracle(),
            config=ChaseConfig(max_frontier_operations=1),
        )
        record = engine.run(InsertOperation(make_tuple("Person", "John")))
        # Before the first frontier operation only the initial insert happened;
        # after one expansion the chase stops again and the budget ends the run.
        assert record.frontier_operation_count == 1
        assert database.count("Person") + database.count("Father") <= 3


class TestTravelCycle:
    def test_sigma1_sigma2_cycle_stops_within_bounded_steps(self, travel):
        database, mappings = travel
        engine = ChaseEngine(
            database,
            mappings,
            oracle=AlwaysUnifyOracle(),
            config=ChaseConfig(max_steps=100, raise_on_budget=True),
        )
        record = engine.run(InsertOperation(make_tuple("S", "JFK", "NYC", "Ithaca")))
        assert record.terminated
        assert record.steps < 100
        assert satisfies_all(mappings, database)

    def test_every_deterministic_stratum_is_finite(self, travel):
        """Repeated inserts never hang even though the mapping graph is cyclic."""
        database, mappings = travel
        engine = ChaseEngine(
            database,
            mappings,
            oracle=RandomOracle(seed=1),
            config=ChaseConfig(max_steps=500, raise_on_budget=True),
        )
        cities = ["Buffalo", "Rochester", "Albany", "Elmira"]
        for city in cities:
            record = engine.run(InsertOperation(make_tuple("C", city)))
            assert record.terminated
        assert satisfies_all(mappings, database)
