"""Heterogeneous federations: slow archive, fast edge — generated and run.

``FederationScenarioConfig(heterogeneous=True)`` augments a generated
scenario with per-peer admission configs (the first peer is a tightly
admitted archive, the last a wide-open edge) and per-directed-link delay
draws (archive links always at the maximum).  The scenario *content* —
schema, mappings, initial database, operation streams — is identical to the
homogeneous generation under the same seed, so recorded numbers stay
comparable; only the serving policies differ.
"""

from __future__ import annotations

from repro.core.oracle import AlwaysExpandOracle
from repro.federation import (
    FederatedNetwork,
    Transport,
    check_convergence,
    reference_chase,
)
from repro.workload.federated_loop import (
    FederatedClientSpec,
    FederatedClosedLoopDriver,
    expanding_answer,
)
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)


def _config(**overrides):
    defaults = dict(
        num_peers=3,
        cross_mappings=4,
        operations_per_peer=4,
        initial_tuples=16,
        seed=11,
        heterogeneous=True,
        min_link_delay=0,
        max_link_delay=2,
    )
    defaults.update(overrides)
    return FederationScenarioConfig(**defaults)


def test_heterogeneous_generation_shapes():
    environment = generate_federation_environment(_config())
    peers = environment.config.peer_names()
    configs = environment.admission_configs
    assert configs is not None and set(configs) == set(peers)
    archive, edge = configs[peers[0]], configs[peers[-1]]
    # Archive tight, edge wide, interpolation monotone.
    assert archive.max_in_flight < edge.max_in_flight
    assert archive.batch_size <= edge.batch_size
    assert not archive.compatible_groups and edge.compatible_groups
    in_flights = [configs[peer].max_in_flight for peer in peers]
    assert in_flights == sorted(in_flights)
    # Every directed link has a delay in range; archive links at the maximum.
    assert len(environment.link_delays) == len(peers) * (len(peers) - 1)
    for (source, destination), delay in environment.link_delays.items():
        assert 0 <= delay <= environment.config.max_link_delay
        if peers[0] in (source, destination):
            assert delay == environment.config.max_link_delay


def test_homogeneous_scenario_content_is_unchanged():
    hetero = generate_federation_environment(_config())
    homo = generate_federation_environment(_config(heterogeneous=False))
    assert homo.admission_configs is None and homo.link_delays == {}
    assert list(hetero.mappings) == list(homo.mappings)
    assert hetero.initial.to_dict() == homo.initial.to_dict()
    assert {
        peer: [op.describe() for op in ops] for peer, ops in hetero.operations.items()
    } == {
        peer: [op.describe() for op in ops] for peer, ops in homo.operations.items()
    }


def test_heterogeneous_federation_converges():
    environment = generate_federation_environment(_config())
    transport = Transport(delay=1)
    environment.apply_link_delays(transport)
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=transport,
        admission=environment.admission_configs,
    )
    # Per-link delays actually took effect.
    peers = environment.config.peer_names()
    assert (
        transport.delay_of(peers[0], peers[1])
        == environment.config.max_link_delay
    )
    specs = [
        FederatedClientSpec(peer=peer, name="client@{}".format(peer), operations=list(ops))
        for peer, ops in environment.operations.items()
    ]
    driver = FederatedClosedLoopDriver(
        network, specs, answer_delay=1, answer_strategy=expanding_answer
    )
    report = driver.run(max_rounds=5_000)
    assert report.all_done and report.drained
    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    assert check_convergence(network, reference).equivalent
    # The archive really is the tightly admitted peer.
    archive_service = network.peer(peers[0]).service
    assert archive_service.scheduler is not None
