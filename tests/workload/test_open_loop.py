"""Open-loop arrivals: Poisson/batch submission with convergence preserved.

The open-loop driver decouples submission from completion — the shape where
admission queues actually build and group admission has headroom.  These
tests pin the arrival processes (seeded, reproducible), the backoff behavior
under a bounded admission queue, and — as always — that the drained
federation still matches the single-repository chase.
"""

from __future__ import annotations

import random

import pytest

from repro.core.oracle import AlwaysExpandOracle
from repro.federation import (
    FederatedNetwork,
    Transport,
    check_convergence,
    reference_chase,
)
from repro.service.admission import AdmissionConfig
from repro.workload.federated_loop import (
    ArrivalProcess,
    FederatedOpenLoopDriver,
    expanding_answer,
)
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)


def _environment(seed=0, **overrides):
    overrides.setdefault("operations_per_peer", 6)
    config = FederationScenarioConfig(
        num_peers=3, cross_mappings=5, seed=seed, **overrides
    )
    return generate_federation_environment(config)


def _network(environment, admission=None):
    return FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=1),
        admission=admission,
    )


def test_poisson_draws_are_seeded_and_nonnegative():
    arrivals = ArrivalProcess(kind="poisson", rate=2.0, seed=3)
    rng_a, rng_b = random.Random(3), random.Random(3)
    draws_a = [arrivals.draw(rng_a, r) for r in range(1, 200)]
    draws_b = [arrivals.draw(rng_b, r) for r in range(1, 200)]
    assert draws_a == draws_b
    assert all(k >= 0 for k in draws_a)
    mean = sum(draws_a) / len(draws_a)
    assert 1.5 < mean < 2.5  # a Poisson(2) sample mean


def test_batch_draws_fire_on_the_interval():
    arrivals = ArrivalProcess(kind="batch", batch_size=5, interval=3)
    rng = random.Random(0)
    draws = [arrivals.draw(rng, r) for r in range(1, 10)]
    assert draws == [5, 0, 0, 5, 0, 0, 5, 0, 0]


def test_batch_interval_one_fires_every_round():
    arrivals = ArrivalProcess(kind="batch", batch_size=2, interval=1)
    rng = random.Random(0)
    assert [arrivals.draw(rng, r) for r in range(1, 5)] == [2, 2, 2, 2]


def test_invalid_arrival_configs_are_rejected():
    with pytest.raises(ValueError):
        ArrivalProcess(kind="weird")
    with pytest.raises(ValueError):
        ArrivalProcess(rate=-1)
    with pytest.raises(ValueError):
        ArrivalProcess(kind="batch", batch_size=0)


@pytest.mark.parametrize("kind", ["poisson", "batch"])
def test_open_loop_run_drains_and_converges(kind):
    environment = _environment(seed=1)
    network = _network(environment)
    arrivals = (
        ArrivalProcess(kind="poisson", rate=1.5, seed=1)
        if kind == "poisson"
        else ArrivalProcess(kind="batch", batch_size=4, interval=2, seed=1)
    )
    driver = FederatedOpenLoopDriver(
        network,
        {peer: list(ops) for peer, ops in environment.operations.items()},
        arrivals,
        answer_delay=1,
        answer_strategy=expanding_answer,
    )
    report = driver.run(max_rounds=5_000)
    assert report.all_submitted and report.drained
    assert report.submitted == sum(
        len(ops) for ops in environment.operations.values()
    )
    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    convergence = check_convergence(network, reference)
    assert convergence.equivalent, convergence.summary()


def test_bursty_arrivals_build_queues_and_back_off():
    """A bounded admission queue under bursts: backoffs happen, nothing lost."""
    environment = _environment(seed=2, operations_per_peer=10)
    admission = AdmissionConfig(max_in_flight=2, batch_size=1, max_queue_depth=2)
    network = _network(environment, admission=admission)
    driver = FederatedOpenLoopDriver(
        network,
        {peer: list(ops) for peer, ops in environment.operations.items()},
        ArrivalProcess(kind="batch", batch_size=10, interval=3, seed=2),
        answer_strategy=expanding_answer,
    )
    report = driver.run(max_rounds=5_000)
    assert report.all_submitted and report.drained
    assert report.backoffs > 0, "the burst should overflow the bounded queue"
    assert report.max_queue_depth > 0
    assert report.submitted == sum(
        len(ops) for ops in environment.operations.values()
    )
