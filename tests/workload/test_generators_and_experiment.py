"""Tests for the synthetic generators and the experiment harness (Section 6)."""

import random

import pytest

from repro.core import satisfies_all
from repro.core.terms import Constant
from repro.core.update import DeleteOperation, InsertOperation
from repro.workload import (
    ExperimentConfig,
    INSERT_WORKLOAD,
    MIXED_WORKLOAD,
    build_environment,
    build_workload,
    generate_constant_pool,
    generate_initial_database,
    generate_mappings,
    generate_schema,
    insert_workload,
    mapping_prefix,
    mixed_workload,
    run_cell_once,
    run_workload_experiment,
)
from repro.workload.metrics import CellResult, ExperimentResult, mean


class TestSchemaGeneration:
    def test_counts_and_arities(self):
        schema = generate_schema(num_relations=30, rng=random.Random(3))
        assert len(schema) == 30
        assert all(1 <= relation.arity <= 6 for relation in schema)

    def test_seeded_generation_is_deterministic(self):
        first = generate_schema(num_relations=10, rng=random.Random(5))
        second = generate_schema(num_relations=10, rng=random.Random(5))
        assert [r.arity for r in first] == [r.arity for r in second]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_schema(num_relations=0)
        with pytest.raises(ValueError):
            generate_schema(min_arity=4, max_arity=2)

    def test_constant_pool_size_and_uniqueness(self):
        pool = generate_constant_pool(size=50, rng=random.Random(1))
        assert len(pool) == 50
        assert len(set(pool)) == 50


class TestMappingGeneration:
    def _generated(self, count=30, seed=7):
        rng = random.Random(seed)
        schema = generate_schema(num_relations=15, rng=rng)
        pool = generate_constant_pool(size=20, rng=rng)
        return schema, generate_mappings(schema, count, rng=rng, constant_pool=pool)

    def test_mappings_validate_against_the_schema(self):
        schema, mappings = self._generated()
        mappings.validate(schema)
        assert len(mappings) == 30

    def test_side_sizes_respect_the_one_to_three_limit(self):
        _, mappings = self._generated()
        for tgd in mappings:
            assert 1 <= len(tgd.lhs) <= 3
            assert 1 <= len(tgd.rhs) <= 3

    def test_most_mappings_export_a_variable(self):
        _, mappings = self._generated()
        exporting = sum(1 for tgd in mappings if tgd.frontier_variables())
        assert exporting >= len(mappings) * 0.9

    def test_family_contains_joins_constants_and_cycles(self):
        _, mappings = self._generated(count=40)
        has_multi_atom_join = any(
            len(tgd.lhs) > 1
            and any(
                tgd.lhs[0].variable_set() & atom.variable_set() for atom in tgd.lhs[1:]
            )
            for tgd in mappings
        )
        has_constant = any(
            atom.constants() for tgd in mappings for atom in tgd.lhs + tgd.rhs
        )
        assert has_multi_atom_join
        assert has_constant
        assert mappings.has_cycle()

    def test_mapping_prefix_is_monotone(self):
        _, mappings = self._generated()
        smaller = mapping_prefix(mappings, 10)
        larger = mapping_prefix(mappings, 20)
        assert list(smaller) == list(larger)[:10]
        with pytest.raises(ValueError):
            mapping_prefix(mappings, 100)


class TestInitialDatabaseGeneration:
    def test_generated_database_satisfies_all_mappings(self):
        rng = random.Random(11)
        schema = generate_schema(num_relations=8, rng=rng)
        pool = generate_constant_pool(size=15, rng=rng)
        mappings = generate_mappings(schema, 8, rng=rng, constant_pool=pool)
        database = generate_initial_database(schema, mappings, 30, pool, rng=rng)
        assert database.total_count() >= 30
        assert satisfies_all(mappings, database)


class TestWorkloads:
    def test_insert_workload_size_and_values(self):
        rng = random.Random(2)
        schema = generate_schema(num_relations=6, rng=rng)
        pool = generate_constant_pool(size=10, rng=rng)
        operations = insert_workload(schema, 25, pool, rng=rng)
        assert len(operations) == 25
        assert all(isinstance(operation, InsertOperation) for operation in operations)
        values = {
            value.value
            for operation in operations
            for value in operation.row.values
        }
        assert any(str(value).startswith("fresh_") for value in values)
        assert any(value in pool for value in values)

    def test_mixed_workload_ratio_and_shuffling(self, travel_db):
        rng = random.Random(3)
        pool = ["a", "b"]
        operations = mixed_workload(
            travel_db.schema, travel_db, 20, pool, rng=rng, delete_fraction=0.2
        )
        deletes = [op for op in operations if isinstance(op, DeleteOperation)]
        inserts = [op for op in operations if isinstance(op, InsertOperation)]
        assert len(operations) == 20
        assert len(deletes) == 4
        assert len(inserts) == 16
        # Deleted tuples must exist in the initial database.
        for operation in deletes:
            assert travel_db.contains(operation.row)
        # The shuffle must not leave all deletes at the tail.
        assert operations[-4:] != deletes


class TestExperimentHarness:
    def test_tiny_experiment_runs_and_aggregates(self):
        config = ExperimentConfig.tiny_scale()
        environment = build_environment(config)
        result = run_workload_experiment(INSERT_WORKLOAD, config, environment)
        assert result.mapping_counts() == sorted(config.mapping_counts)
        assert set(result.algorithms()) == set(config.algorithms)
        table = result.format_table()
        assert "COARSE" in table and "PRECISE" in table
        # Every cell ran and terminated all its updates.
        for cell in result.cells:
            assert cell.runs
            for run in cell.runs:
                assert run.updates_terminated == run.updates_executed

    def test_workload_builders(self):
        config = ExperimentConfig.tiny_scale()
        environment = build_environment(config)
        inserts = build_workload(environment, INSERT_WORKLOAD, seed=1)
        mixed = build_workload(environment, MIXED_WORKLOAD, seed=1)
        assert len(inserts) == config.num_updates
        assert len(mixed) == config.num_updates
        with pytest.raises(ValueError):
            build_workload(environment, "bogus", seed=1)

    def test_abort_ordering_between_algorithms(self):
        """The headline shape: NAIVE >= COARSE >= PRECISE aborts on a conflict-heavy cell."""
        config = ExperimentConfig.small_scale().scaled(num_updates=25, runs_per_cell=1)
        environment = build_environment(config)
        mapping_count = max(config.mapping_counts)
        naive = run_cell_once(environment, mapping_count, "NAIVE", INSERT_WORKLOAD, seed=7)
        coarse = run_cell_once(environment, mapping_count, "COARSE", INSERT_WORKLOAD, seed=7)
        precise = run_cell_once(environment, mapping_count, "PRECISE", INSERT_WORKLOAD, seed=7)
        assert naive.aborts >= coarse.aborts >= precise.aborts
        assert coarse.cascading_abort_requests >= precise.cascading_abort_requests
        # PRECISE pays for its precision in tracker work.
        assert precise.tracker_cost_units > coarse.tracker_cost_units

    def test_scaled_config_helpers(self):
        paper = ExperimentConfig.paper_scale()
        assert paper.num_updates == 500
        assert paper.mapping_counts == (20, 40, 60, 80, 100)
        custom = ExperimentConfig.small_scale().scaled(num_updates=5)
        assert custom.num_updates == 5


class TestMetrics:
    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([1, 2, 3]) == 2.0

    def test_slowdown_series_uses_precise_over_coarse(self):
        from repro.concurrency.aborts import RunStatistics

        result = ExperimentResult(workload="test")
        coarse_cell = CellResult("test", 10, "COARSE")
        coarse_stats = RunStatistics(algorithm="COARSE", updates_executed=10)
        coarse_stats.wall_seconds = 10.0
        coarse_stats.chase_cost_units = 100
        coarse_cell.runs.append(coarse_stats)
        precise_cell = CellResult("test", 10, "PRECISE")
        precise_stats = RunStatistics(algorithm="PRECISE", updates_executed=10)
        precise_stats.wall_seconds = 20.0
        precise_stats.chase_cost_units = 300
        precise_cell.runs.append(precise_stats)
        result.cells.extend([coarse_cell, precise_cell])
        assert result.precise_slowdown_series() == [(10, 2.0)]
        assert result.precise_slowdown_series(use_cost_model=True) == [(10, 3.0)]
        with pytest.raises(KeyError):
            result.cell(10, "NAIVE")
