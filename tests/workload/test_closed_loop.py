"""Tests for the closed-loop multi-client service driver."""

import pytest

from repro.core import InsertOperation, make_tuple
from repro.fixtures import genealogy_repository, travel_repository
from repro.service import AdmissionConfig, RepositoryService, TicketStatus
from repro.workload import ClientSpec, ClosedLoopDriver, conservative_answer


def _genealogy_service(**admission_kwargs):
    database, mappings = genealogy_repository()
    admission = AdmissionConfig(**admission_kwargs) if admission_kwargs else None
    return RepositoryService(database.snapshot(), mappings, admission=admission)


def _specs(clients, updates_each, think_time=1):
    return [
        ClientSpec(
            name="client-{}".format(index),
            operations=[
                InsertOperation(
                    make_tuple("Person", "p_{}_{}".format(index, serial))
                )
                for serial in range(updates_each)
            ],
            think_time=think_time,
        )
        for index in range(clients)
    ]


class TestClosedLoopDriver:
    def test_all_clients_drain_and_commit(self):
        service = _genealogy_service()
        driver = ClosedLoopDriver(service, _specs(4, 3), answer_delay=1)
        report = driver.run(max_ticks=500)
        assert report.all_done
        assert report.submitted == 12
        assert all(
            ticket.status is TicketStatus.COMMITTED for ticket in service.tickets()
        )
        assert service.is_quiescent

    def test_answer_delay_is_respected(self):
        service = _genealogy_service()
        driver = ClosedLoopDriver(service, _specs(2, 2), answer_delay=3)
        report = driver.run(max_ticks=500)
        assert report.all_done
        assert report.answered > 0
        assert all(wait >= 3 for wait in report.frontier_wait_ticks)

    def test_closed_loop_keeps_one_outstanding_update_per_client(self):
        service = _genealogy_service(max_in_flight=2, batch_size=2)
        specs = _specs(2, 4, think_time=0)
        driver = ClosedLoopDriver(service, specs, answer_delay=1)
        report = driver.run(max_ticks=500)
        assert report.all_done
        # A closed loop never queues more than one update per client.
        assert service.metrics_snapshot()["committed"] == 8

    def test_questions_are_answered_by_peers_when_possible(self):
        service = _genealogy_service()
        driver = ClosedLoopDriver(service, _specs(3, 1), answer_delay=1)
        driver.run(max_ticks=500)
        sessions = service.sessions()
        # Every question was answered by somebody, and answer counts add up.
        assert sum(session.frontier_answers for session in sessions) == 3

    def test_deterministic_workload_needs_no_answers(self):
        database, mappings = travel_repository()
        service = RepositoryService(database.snapshot(), mappings)
        specs = [
            ClientSpec(
                name="solo",
                operations=[
                    InsertOperation(
                        make_tuple("T", "Falls", "ABC Tours", "Toronto")
                    )
                ],
            )
        ]
        report = ClosedLoopDriver(service, specs).run(max_ticks=100)
        assert report.all_done
        assert report.answered == 0

    def test_conservative_answer_prefers_unification(self):
        service = _genealogy_service()
        driver = ClosedLoopDriver(
            service, _specs(1, 1), answer_delay=1, answer_strategy=conservative_answer
        )
        driver.run(max_ticks=100)
        snapshot = service.snapshot()
        # Unification closes the ancestor loop instead of growing it.
        assert snapshot.count("Person") == 1
        assert snapshot.count("Father") == 1
