"""Scenario-generator invariants and the federated closed-loop driver."""

from __future__ import annotations

import pytest

from repro.core.update import DeleteOperation, InsertOperation
from repro.federation import FederatedNetwork, Transport
from repro.workload.federated_loop import (
    FederatedClientSpec,
    FederatedClosedLoopDriver,
)
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_generator_invariants(seed):
    config = FederationScenarioConfig(num_peers=4, cross_mappings=6, seed=seed)
    environment = generate_federation_environment(config)

    # Ownership partitions the schema exactly.
    owned = [
        relation
        for relations in environment.ownership.values()
        for relation in relations
    ]
    assert sorted(owned) == sorted(environment.schema.relation_names())
    assert len(owned) == len(set(owned))

    # The union mapping graph is acyclic (and hence weakly acyclic): the
    # differential reference's always-expand chase must terminate.
    assert not environment.mappings.has_cycle()
    assert environment.mappings.is_weakly_acyclic()

    # Free relations are mentioned by no mapping; deletes target only them,
    # and only tuples present in the initial database.
    mapped_anywhere = set()
    for tgd in environment.mappings:
        mapped_anywhere.update(tgd.relations())
    for peer, relations in environment.ownership.items():
        free = [name for name in relations if name not in environment.mapped_relations[peer]]
        assert not mapped_anywhere.intersection(free)
    for peer, operations in environment.operations.items():
        assert operations
        for operation in operations:
            if isinstance(operation, DeleteOperation):
                assert operation.row.relation not in mapped_anywhere
                assert environment.ownership[peer].count(operation.row.relation) == 1
                assert environment.initial.contains(operation.row)
            else:
                assert isinstance(operation, InsertOperation)

    # The canonical serial order interleaves every stream completely.
    merged = environment.all_operations()
    assert len(merged) == sum(len(ops) for ops in environment.operations.values())

    # The generated initial database satisfies the union of mappings.
    from repro.core.violations import satisfies_all

    assert satisfies_all(list(environment.mappings), environment.initial)


def test_generator_produces_remote_and_deduplicated_deletes():
    environment = generate_federation_environment(
        FederationScenarioConfig(remote_insert_fraction=1.0, seed=0)
    )
    routed = 0
    deleted_rows = []
    for peer, operations in environment.operations.items():
        for operation in operations:
            if isinstance(operation, InsertOperation):
                if operation.row.relation not in environment.ownership[peer]:
                    routed += 1
            else:
                deleted_rows.append(operation.row)
    assert routed > 0
    assert len(deleted_rows) == len(set(deleted_rows))  # each tuple deleted once


def test_driver_runs_scenario_to_drained_completion():
    environment = generate_federation_environment(FederationScenarioConfig(seed=1))
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=1),
    )
    specs = [
        FederatedClientSpec(peer=peer, name="client@{}".format(peer), operations=list(ops))
        for peer, ops in environment.operations.items()
    ]
    report = FederatedClosedLoopDriver(network, specs, answer_delay=1).run(
        max_rounds=3_000
    )
    assert report.all_done and report.drained
    assert report.submitted == sum(
        len(ops) for ops in environment.operations.values()
    )
    # Every federated ticket reached a terminal state.
    assert all(ticket.is_done for ticket in network.tickets())
    assert network.quiescent()
