"""Golden-bytes fixtures: the wire dialect is pinned, byte for byte.

``golden_envelopes.jsonl`` records the exact bytes the codec produced for a
fixed set of representative payloads at the time the format was frozen.  The
test re-encodes the same payloads and compares byte-for-byte, and decodes the
recorded bytes back to the expected objects — so *any* accidental change to
an encoder (a renamed key, a reordered member, a float formatting change)
fails loudly here instead of silently forking the wire dialect between
builds.  A deliberate format change must bump
:data:`~repro.codec.WIRE_VERSION` and regenerate the fixture:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/codec/test_golden.py
"""

from __future__ import annotations

import json
import os

import pytest

from repro.codec import decode_envelope, encode_envelope
from repro.core.atoms import Atom
from repro.core.frontier import (
    DeleteSubsetOperation,
    ExpandOperation,
    FrontierTuple,
    NegativeFrontierRequest,
    PositiveFrontierRequest,
)
from repro.core.terms import Constant, LabeledNull, Variable
from repro.core.tgd import Tgd
from repro.core.tuples import Tuple
from repro.core.update import DeleteOperation, InsertOperation
from repro.core.violations import Violation, ViolationKind
from repro.federation.envelopes import (
    CommitNotice,
    ExchangeFiring,
    ExchangeRetraction,
    QuestionAnswer,
    QuestionCancelled,
    QuestionOpened,
    RemoteUpdate,
    freeze_assignment,
)
from repro.federation.operations import RemoteFiringOperation
from repro.federation.transport import Bundle
from repro.service.tickets import RemoteOrigin, TicketStatus

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_envelopes.jsonl")

_TGD = Tgd(
    [Atom("A", [Variable("x"), Constant("k")])],
    [Atom("B", [Variable("x"), Variable("z")])],
    name="sigma1",
)
_ORIGIN = RemoteOrigin("p0", 11)
_VIOLATION = Violation(
    tgd=_TGD,
    bindings=freeze_assignment({Variable("x"): Constant("c1")}),
    witness=(Tuple("A", [Constant("c1"), Constant("k")]),),
    kind=ViolationKind.LHS,
)
_FRONTIER = FrontierTuple(
    row=Tuple("B", [Constant("c1"), LabeledNull("x3")]),
    violation=_VIOLATION,
    candidates=(Tuple("B", [Constant("c1"), Constant("nyc")]),),
    fresh_nulls=frozenset({LabeledNull("x3")}),
)


def golden_payloads():
    """The fixed payload set the fixture pins, in a stable order."""
    firing = ExchangeFiring(
        tgd=_TGD,
        assignment_items=freeze_assignment({Variable("x"): Constant("c1")}),
        head_rows=(Tuple("B", [Constant("c1"), LabeledNull("p0f1")]),),
        origin=_ORIGIN,
    )
    return [
        ("remote-update-insert", RemoteUpdate(
            operation=InsertOperation(Tuple("A", [Constant(7), Constant("k")])),
            origin=_ORIGIN,
        )),
        ("remote-update-delete", RemoteUpdate(
            operation=DeleteOperation(Tuple("A", [Constant("c9"), Constant("k")])),
            origin=RemoteOrigin("p2", 3),
        )),
        ("firing", firing),
        ("retraction", ExchangeRetraction(
            tgd=_TGD,
            assignment_items=freeze_assignment({Variable("x"): Constant("c1")}),
            removed_row=Tuple("B", [Constant("c1"), Constant("d")]),
            origin=_ORIGIN,
        )),
        ("remote-firing-operation", RemoteUpdate(
            operation=RemoteFiringOperation(
                _TGD,
                {Variable("x"): Constant("c1")},
                (Tuple("B", [Constant("c1"), LabeledNull("p1f4")]),),
            ),
            origin=_ORIGIN,
        )),
        ("question-opened-positive", QuestionOpened(
            executing_peer="p1",
            decision_id=5,
            request=PositiveFrontierRequest(
                violation=_VIOLATION, frontier_tuples=(_FRONTIER,)
            ),
            origin=_ORIGIN,
            ticket_description="ticket #11 [running]",
        )),
        ("question-opened-negative", QuestionOpened(
            executing_peer="p1",
            decision_id=6,
            request=NegativeFrontierRequest(
                violation=_VIOLATION,
                candidates=(
                    Tuple("A", [Constant("c1"), Constant("k")]),
                    Tuple("A", [Constant("c2"), Constant("k")]),
                ),
            ),
            origin=_ORIGIN,
            ticket_description="ticket #12 [running]",
        )),
        ("question-cancelled", QuestionCancelled(
            executing_peer="p1", decision_id=5, origin=_ORIGIN
        )),
        ("question-answer-index", QuestionAnswer(
            executing_peer="p1", decision_id=5, choice=0, answered_by="p0"
        )),
        ("question-answer-expand", QuestionAnswer(
            executing_peer="p1",
            decision_id=5,
            choice=ExpandOperation(_FRONTIER),
            answered_by="p0",
        )),
        ("question-answer-delete", QuestionAnswer(
            executing_peer="p1",
            decision_id=6,
            choice=DeleteSubsetOperation((Tuple("A", [Constant("c1"), Constant("k")]),)),
            answered_by="p0",
        )),
        ("commit-notice", CommitNotice(origin=_ORIGIN, status=TicketStatus.COMMITTED)),
        ("commit-notice-failed", CommitNotice(
            origin=RemoteOrigin("p3", 8), status=TicketStatus.FAILED
        )),
        ("bundle", Bundle((
            firing,
            CommitNotice(origin=_ORIGIN, status=TicketStatus.COMMITTED),
        ))),
        ("raw-scalar", "transport-smoke"),
    ]


def _load_fixture():
    records = {}
    with open(GOLDEN_PATH) as handle:
        for line in handle:
            if not line.strip():
                continue
            record = json.loads(line)
            records[record["name"]] = record["bytes"]
    return records


def test_fixture_exists_or_regenerate():
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1" or not os.path.exists(GOLDEN_PATH):
        with open(GOLDEN_PATH, "w") as handle:
            for name, payload in golden_payloads():
                handle.write(json.dumps({
                    "name": name,
                    "bytes": encode_envelope(payload).decode("ascii"),
                }) + "\n")
    assert os.path.exists(GOLDEN_PATH)


@pytest.mark.parametrize("name,payload", golden_payloads())
def test_encoding_matches_golden_bytes(name, payload):
    recorded = _load_fixture()
    assert name in recorded, (
        "no golden record for {!r}; regenerate with REPRO_REGEN_GOLDEN=1".format(name)
    )
    assert encode_envelope(payload).decode("ascii") == recorded[name], (
        "wire bytes for {!r} changed; a deliberate format change must bump "
        "WIRE_VERSION and regenerate the fixture".format(name)
    )


@pytest.mark.parametrize("name,payload", golden_payloads())
def test_golden_bytes_decode_to_expected_payloads(name, payload):
    recorded = _load_fixture()
    assert decode_envelope(recorded[name].encode("ascii")) == payload
