"""Framing robustness: reassembly under arbitrary chunking, rejection of rot.

The socket transport trusts :class:`~repro.codec.framing.FrameDecoder` to turn
an arbitrary chunking of the byte stream back into the frames the sender
wrote.  These tests pin that contract over the *golden* payload corpus (the
same representative set the golden-bytes fixture freezes): a seeded
byte-chopper replays every corpus stream in random splits and coalescings and
the decoder must reproduce the frame sequence exactly; truncation leaves
bytes pending rather than fabricating a frame; and every header corruption —
wrong magic, unknown version, unknown kind, a length beyond the limit — is
rejected as :class:`~repro.codec.framing.FramingError` the moment the header
is readable.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.codec import (
    FRAME_CONTROL,
    FRAME_ENVELOPE,
    FRAME_MAGIC,
    HEADER_SIZE,
    WIRE_VERSION,
    FrameDecoder,
    FramingError,
    decode_envelope,
    encode_envelope,
    encode_frame,
)

from test_golden import golden_payloads


def _golden_frames():
    """The corpus stream: every golden payload, framed, in fixture order."""
    return [
        (name, encode_frame(FRAME_ENVELOPE, encode_envelope(payload)))
        for name, payload in golden_payloads()
    ]


def _chop(data: bytes, rng: random.Random):
    """Split *data* into random-size chunks (1..max segment), keeping order."""
    chunks = []
    position = 0
    while position < len(data):
        size = rng.randint(1, max(1, min(37, len(data) - position)))
        chunks.append(data[position:position + size])
        position += size
    return chunks


def test_single_frame_round_trip():
    for name, payload in golden_payloads():
        encoded = encode_envelope(payload)
        frames = FrameDecoder().feed(encode_frame(FRAME_ENVELOPE, encoded))
        assert len(frames) == 1
        assert frames[0].kind == FRAME_ENVELOPE
        assert frames[0].payload == encoded
        # The frame wraps the *unchanged* unframed dialect: stripping the
        # header yields bytes the plain codec decodes to the same payload.
        assert decode_envelope(frames[0].payload) == payload


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 2026])
def test_chopped_stream_reassembles(seed):
    """Seeded byte-chopper: any split of the stream yields the same frames."""
    rng = random.Random(seed)
    expected = _golden_frames()
    stream = b"".join(frame for _, frame in expected)
    decoder = FrameDecoder()
    received = []
    for chunk in _chop(stream, rng):
        received.extend(decoder.feed(chunk))
    assert decoder.pending_bytes == 0
    assert len(received) == len(expected)
    for (name, framed), frame in zip(expected, received):
        assert framed == b"".join(
            (framed[:HEADER_SIZE], frame.payload)
        ), "frame for {!r} did not survive reassembly".format(name)


def test_coalesced_segments():
    """Many frames arriving in one recv() come back as many frames."""
    expected = _golden_frames()
    stream = b"".join(frame for _, frame in expected)
    frames = FrameDecoder().feed(stream)
    assert [f.payload for f in frames] == [
        framed[HEADER_SIZE:] for _, framed in expected
    ]


def test_truncated_frame_stays_pending():
    framed = encode_frame(FRAME_ENVELOPE, encode_envelope("transport-smoke"))
    decoder = FrameDecoder()
    # Header split across feeds: nothing delivered, bytes pending.
    assert decoder.feed(framed[:3]) == []
    assert decoder.pending_bytes == 3
    # Full header, partial payload: still nothing delivered.
    assert decoder.feed(framed[3:-2]) == []
    assert decoder.pending_bytes == len(framed) - 2
    # The last bytes complete the frame.
    frames = decoder.feed(framed[-2:])
    assert len(frames) == 1
    assert decode_envelope(frames[0].payload) == "transport-smoke"
    assert decoder.pending_bytes == 0


def test_bad_magic_rejected():
    framed = encode_frame(FRAME_CONTROL, b"{}")
    corrupted = b"XX" + framed[2:]
    with pytest.raises(FramingError, match="magic"):
        FrameDecoder().feed(corrupted)


def test_unknown_version_rejected():
    framed = bytearray(encode_frame(FRAME_CONTROL, b"{}"))
    framed[2] = WIRE_VERSION + 1
    with pytest.raises(FramingError, match="version"):
        FrameDecoder().feed(bytes(framed))


def test_unknown_kind_rejected():
    framed = bytearray(encode_frame(FRAME_CONTROL, b"{}"))
    framed[3] = 99
    with pytest.raises(FramingError, match="kind"):
        FrameDecoder().feed(bytes(framed))


def test_oversized_length_rejected_before_payload_arrives():
    header = struct.pack(">2sBBI", FRAME_MAGIC, WIRE_VERSION, FRAME_ENVELOPE, 1 << 30)
    decoder = FrameDecoder(max_payload=1024)
    # The header alone is enough to reject: no 1 GiB buffer is ever awaited.
    with pytest.raises(FramingError, match="limit"):
        decoder.feed(header)


def test_oversized_payload_rejected_at_encode():
    with pytest.raises(FramingError, match="limit"):
        encode_frame(FRAME_ENVELOPE, b"x" * (64 * 1024 * 1024 + 1))


def test_unknown_kind_rejected_at_encode():
    with pytest.raises(FramingError, match="kind"):
        encode_frame(42, b"{}")


def test_interleaved_kinds_keep_order():
    control = encode_frame(FRAME_CONTROL, b'{"t":"hello","peer":"p0"}')
    envelope = encode_frame(FRAME_ENVELOPE, encode_envelope("transport-smoke"))
    frames = FrameDecoder().feed(control + envelope + control)
    assert [f.kind for f in frames] == [FRAME_CONTROL, FRAME_ENVELOPE, FRAME_CONTROL]


@pytest.mark.parametrize("seed", [11, 13])
def test_chopper_with_interleaved_control_frames(seed):
    """The chopper again, over a stream mixing control and envelope frames."""
    rng = random.Random(seed)
    stream_frames = []
    for index, (name, payload) in enumerate(golden_payloads()):
        stream_frames.append(encode_frame(FRAME_ENVELOPE, encode_envelope(payload)))
        if index % 3 == 0:
            stream_frames.append(
                encode_frame(FRAME_CONTROL, b'{"t":"status","round":%d}' % index)
            )
    stream = b"".join(stream_frames)
    decoder = FrameDecoder()
    received = []
    for chunk in _chop(stream, rng):
        received.extend(decoder.feed(chunk))
    assert len(received) == len(stream_frames)
    assert b"".join(encode_frame(f.kind, f.payload) for f in received) == stream
    assert decoder.pending_bytes == 0
