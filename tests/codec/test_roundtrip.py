"""Randomized codec property suite: round-trip identity for every wire shape.

Seeded generators produce every payload shape the federation can put on the
transport — terms (labeled nulls included), tuples, writes, mappings,
violations, frontier questions with candidates and fresh nulls, user
operations (federation-synthesized ones included), question routing, commit
notices, and coalesced bundles — and every one must satisfy
``decode(encode(x)) == x`` under the core types' value equality.  The suite
also pins the failure behavior: unknown wire versions, unknown tags and
malformed bytes must raise :class:`~repro.codec.CodecError`, never decode to
something wrong.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.codec import (
    CodecError,
    WIRE_VERSION,
    decode_envelope,
    encode_envelope,
    payload_kind,
    payloads_equivalent,
)
from repro.codec.wire import (
    decode_frontier_operation,
    decode_frontier_request,
    decode_schema,
    decode_user_operation,
    decode_versioned_write,
    dumps,
    encode_frontier_operation,
    encode_frontier_request,
    encode_schema,
    encode_user_operation,
    encode_versioned_write,
)
from repro.core.atoms import Atom
from repro.core.frontier import (
    DeleteSubsetOperation,
    ExpandOperation,
    FrontierTuple,
    NegativeFrontierRequest,
    PositiveFrontierRequest,
    UnifyOperation,
)
from repro.core.schema import DatabaseSchema
from repro.core.terms import Constant, LabeledNull, Variable
from repro.core.tgd import Tgd
from repro.core.tuples import Tuple
from repro.core.update import (
    DeleteOperation,
    InsertOperation,
    NullReplacementOperation,
)
from repro.core.violations import Violation, ViolationKind
from repro.core.writes import Write, WriteKind, delete, insert, modify
from repro.federation.envelopes import (
    CommitNotice,
    ExchangeFiring,
    ExchangeRetraction,
    QuestionAnswer,
    QuestionCancelled,
    QuestionOpened,
    RemoteUpdate,
    freeze_assignment,
)
from repro.federation.operations import (
    RemoteFiringOperation,
    RemoteRetractionOperation,
)
from repro.federation.transport import Bundle
from repro.service.tickets import RemoteOrigin, TicketStatus
from repro.storage.versioned import VersionedWrite


# ----------------------------------------------------------------------
# Seeded generators
# ----------------------------------------------------------------------
class Gen:
    """A compact generator of every wire shape, driven by one seeded RNG."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def constant(self):
        kind = self.rng.randrange(4)
        if kind == 0:
            return Constant("c{}".format(self.rng.randrange(40)))
        if kind == 1:
            return Constant(self.rng.randrange(-1000, 1000))
        if kind == 2:
            return Constant(self.rng.choice([True, False]))
        return Constant("unicode-é中{}".format(self.rng.randrange(9)))

    def null(self):
        return LabeledNull("x{}".format(self.rng.randrange(30)))

    def data_term(self):
        return self.null() if self.rng.random() < 0.4 else self.constant()

    def row(self, relation=None, arity=None):
        relation = relation or "R{}".format(self.rng.randrange(5))
        arity = arity or self.rng.randint(1, 4)
        return Tuple(relation, [self.data_term() for _ in range(arity)])

    def atom(self, relation=None, arity=None):
        relation = relation or "R{}".format(self.rng.randrange(5))
        arity = arity or self.rng.randint(1, 3)
        terms = []
        for _ in range(arity):
            if self.rng.random() < 0.6:
                terms.append(Variable("v{}".format(self.rng.randrange(8))))
            else:
                terms.append(self.constant())
        return Atom(relation, terms)

    def tgd(self):
        lhs = [self.atom() for _ in range(self.rng.randint(1, 2))]
        # Guarantee a shared variable so generated tgds look like real ones.
        shared = Variable("v0")
        rhs = [
            Atom(
                "H{}".format(self.rng.randrange(3)),
                [shared, Variable("z{}".format(self.rng.randrange(4)))],
            )
        ]
        if not any(shared in atom.variable_set() for atom in lhs):
            lhs[0] = Atom(lhs[0].relation, (shared,) + lhs[0].terms[1:])
        return Tgd(lhs, rhs, name="sigma{}".format(self.rng.randrange(9)))

    def write(self):
        kind = self.rng.randrange(3)
        if kind == 0:
            return insert(self.row())
        if kind == 1:
            return delete(self.row())
        null = self.null()
        replacement = self.constant()
        old = Tuple("R0", [null, self.constant()])
        return modify(old, old.substitute({null: replacement}), null, replacement)

    def versioned_write(self):
        return VersionedWrite(
            seq=self.rng.randrange(1, 10_000),
            priority=self.rng.randrange(1, 500),
            tid=self.rng.randrange(1, 10_000),
            write=self.write(),
        )

    def origin(self):
        return RemoteOrigin(
            peer="p{}".format(self.rng.randrange(5)),
            ticket_id=self.rng.randrange(1, 200),
        )

    def assignment_items(self, tgd):
        frontier = sorted(tgd.frontier_variables(), key=lambda v: v.name)
        return freeze_assignment(
            {variable: self.data_term() for variable in frontier}
        )

    def violation(self):
        tgd = self.tgd()
        return Violation(
            tgd=tgd,
            bindings=freeze_assignment(
                {variable: self.data_term() for variable in tgd.lhs_variables()}
            ),
            witness=tuple(self.row() for _ in range(self.rng.randint(1, 2))),
            kind=self.rng.choice([ViolationKind.LHS, ViolationKind.RHS]),
        )

    def frontier_tuple(self):
        fresh = frozenset(self.null() for _ in range(self.rng.randint(0, 2)))
        values = list(fresh) + [self.data_term()]
        row = Tuple("F{}".format(self.rng.randrange(3)), values)
        return FrontierTuple(
            row=row,
            violation=self.violation(),
            candidates=tuple(
                self.row(relation=row.relation, arity=row.arity)
                for _ in range(self.rng.randint(0, 2))
            ),
            fresh_nulls=fresh,
        )

    def frontier_request(self):
        if self.rng.random() < 0.5:
            return PositiveFrontierRequest(
                violation=self.violation(),
                frontier_tuples=tuple(
                    self.frontier_tuple() for _ in range(self.rng.randint(1, 2))
                ),
            )
        return NegativeFrontierRequest(
            violation=self.violation(),
            candidates=tuple(self.row() for _ in range(self.rng.randint(1, 3))),
        )

    def frontier_operation(self):
        kind = self.rng.randrange(3)
        if kind == 0:
            return ExpandOperation(self.frontier_tuple())
        if kind == 1:
            frontier = self.frontier_tuple()
            return UnifyOperation(frontier, self.row(
                relation=frontier.row.relation, arity=frontier.row.arity
            ))
        return DeleteSubsetOperation(
            tuple(self.row() for _ in range(self.rng.randint(1, 2)))
        )

    def user_operation(self):
        kind = self.rng.randrange(5)
        if kind == 0:
            return InsertOperation(self.row())
        if kind == 1:
            return DeleteOperation(self.row())
        if kind == 2:
            return NullReplacementOperation(self.null(), self.constant())
        tgd = self.tgd()
        assignment = dict(self.assignment_items(tgd))
        if kind == 3:
            return RemoteFiringOperation(
                tgd, assignment,
                tuple(self.row() for _ in range(self.rng.randint(1, 2))),
            )
        return RemoteRetractionOperation(tgd, assignment)

    def payload(self, allow_bundle=True):
        kind = self.rng.randrange(8 if allow_bundle else 7)
        if kind == 0:
            return RemoteUpdate(operation=self.user_operation(), origin=self.origin())
        if kind == 1:
            tgd = self.tgd()
            return ExchangeFiring(
                tgd=tgd,
                assignment_items=self.assignment_items(tgd),
                head_rows=tuple(self.row() for _ in range(self.rng.randint(1, 2))),
                origin=self.origin(),
            )
        if kind == 2:
            tgd = self.tgd()
            return ExchangeRetraction(
                tgd=tgd,
                assignment_items=self.assignment_items(tgd),
                removed_row=self.row(),
                origin=self.origin(),
            )
        if kind == 3:
            return QuestionOpened(
                executing_peer="p{}".format(self.rng.randrange(4)),
                decision_id=self.rng.randrange(1, 99),
                request=self.frontier_request(),
                origin=self.origin(),
                ticket_description="ticket #{}".format(self.rng.randrange(50)),
            )
        if kind == 4:
            return QuestionCancelled(
                executing_peer="p1",
                decision_id=self.rng.randrange(1, 99),
                origin=self.origin(),
            )
        if kind == 5:
            choice = (
                self.rng.randrange(5)
                if self.rng.random() < 0.5
                else self.frontier_operation()
            )
            return QuestionAnswer(
                executing_peer="p2",
                decision_id=self.rng.randrange(1, 99),
                choice=choice,
                answered_by="p0",
            )
        if kind == 6:
            return CommitNotice(
                origin=self.origin(),
                status=self.rng.choice(list(TicketStatus)),
            )
        # A coalesced bundle: several payloads travelling as one envelope.
        return Bundle(
            tuple(
                self.payload(allow_bundle=False)
                for _ in range(self.rng.randint(2, 4))
            )
        )


# ----------------------------------------------------------------------
# Round-trip identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_random_payload_round_trip(seed):
    gen = Gen(seed)
    for _ in range(40):
        payload = gen.payload()
        data = encode_envelope(payload)
        assert isinstance(data, bytes)
        decoded = decode_envelope(data)
        assert decoded == payload
        assert payloads_equivalent(decoded, payload)
        # Determinism: encoding the decoded copy reproduces the exact bytes.
        assert encode_envelope(decoded) == data


@pytest.mark.parametrize("seed", range(6))
def test_random_structure_round_trips(seed):
    gen = Gen(seed)
    for _ in range(60):
        entry = gen.versioned_write()
        assert decode_versioned_write(encode_versioned_write(entry)) == entry
        request = gen.frontier_request()
        assert decode_frontier_request(encode_frontier_request(request)) == request
        operation = gen.frontier_operation()
        assert (
            decode_frontier_operation(encode_frontier_operation(operation))
            == operation
        )
        user_operation = gen.user_operation()
        assert (
            decode_user_operation(encode_user_operation(user_operation))
            == user_operation
        )


def test_schema_round_trip_preserves_declaration_order():
    schema = DatabaseSchema.from_dict(
        {"B": ["x", "y"], "A": ["a1"], "C": ["u", "v", "w"]}
    )
    decoded = decode_schema(encode_schema(schema))
    assert decoded.relation_names() == schema.relation_names()
    for name in schema.relation_names():
        assert decoded.relation(name).attributes == schema.relation(name).attributes


def test_integer_constants_survive_the_wire():
    # The flat SQL row codec is lossy on ints; the wire codec must not be.
    payload = RemoteUpdate(
        operation=InsertOperation(Tuple("R", [Constant(42), Constant("42")])),
        origin=RemoteOrigin("p0", 1),
    )
    decoded = decode_envelope(encode_envelope(payload))
    values = decoded.operation.row.values
    assert values[0] == Constant(42) and values[1] == Constant("42")
    assert values[0] != values[1]


# ----------------------------------------------------------------------
# Null-renaming-aware equality
# ----------------------------------------------------------------------
def _firing_with_nulls(names):
    tgd = Tgd([Atom("A", [Variable("x")])], [Atom("B", [Variable("x"), Variable("z")])])
    return ExchangeFiring(
        tgd=tgd,
        assignment_items=freeze_assignment({Variable("x"): Constant("c")}),
        head_rows=(
            Tuple("B", [Constant("c"), LabeledNull(names[0])]),
            Tuple("B", [LabeledNull(names[1]), LabeledNull(names[0])]),
        ),
        origin=RemoteOrigin("p0", 7),
    )


def test_equivalence_up_to_consistent_null_renaming():
    a = _firing_with_nulls(["n1", "n2"])
    b = _firing_with_nulls(["fresh9", "other3"])
    assert a != b
    assert payloads_equivalent(a, b)


def test_inconsistent_null_renaming_is_not_equivalent():
    a = _firing_with_nulls(["n1", "n2"])  # positions: n1, n2, n1
    c = ExchangeFiring(
        tgd=a.tgd,
        assignment_items=a.assignment_items,
        head_rows=(
            Tuple("B", [Constant("c"), LabeledNull("m1")]),
            Tuple("B", [LabeledNull("m2"), LabeledNull("m3")]),  # m3 != m1
        ),
        origin=a.origin,
    )
    assert not payloads_equivalent(a, c)


# ----------------------------------------------------------------------
# Failure behavior
# ----------------------------------------------------------------------
def test_unknown_wire_version_is_rejected():
    good = encode_envelope(CommitNotice(RemoteOrigin("p0", 1), TicketStatus.COMMITTED))
    structure = json.loads(good.decode("utf-8"))
    structure["v"] = WIRE_VERSION + 1
    with pytest.raises(CodecError, match="unsupported wire version"):
        decode_envelope(dumps(structure))


def test_missing_header_is_rejected():
    with pytest.raises(CodecError):
        decode_envelope(dumps({"k": "firing", "b": {}}))
    with pytest.raises(CodecError):
        decode_envelope(dumps(["not", "an", "envelope"]))


def test_malformed_bytes_are_rejected():
    with pytest.raises(CodecError):
        decode_envelope(b"\xff\xfe not json")
    with pytest.raises(CodecError):
        decode_envelope(b'{"v": 1, "b": {"t": "no-such-payload"}}')


def test_unencodable_payload_is_rejected():
    class Mystery:
        pass

    with pytest.raises(CodecError):
        encode_envelope(Mystery())
    with pytest.raises(CodecError):
        payload_kind(Mystery())


# ----------------------------------------------------------------------
# Optional trace context (observability layer)
# ----------------------------------------------------------------------
def test_traced_payloads_round_trip():
    """``trace`` rides the wire as an optional ``tr`` field on every kind.

    Equality intentionally ignores the trace (``compare=False`` keeps golden
    comparisons and coalescing dedup independent of tracing), so the context
    itself is asserted explicitly.
    """
    import dataclasses

    from repro.obs.trace import SpanContext

    context = SpanContext(trace_id="t7", span_id="s42")
    for seed in range(4):
        gen = Gen(seed)
        for _ in range(25):
            payload = gen.payload()
            traced = dataclasses.replace(payload, trace=context)
            data = encode_envelope(traced)
            assert b'"tr"' in data
            decoded = decode_envelope(data)
            assert decoded == payload  # equality ignores the trace...
            assert decoded.trace == context  # ...but the context survives
            assert encode_envelope(decoded) == data


def test_traced_bundle_members_keep_their_contexts():
    import dataclasses

    from repro.obs.trace import SpanContext

    gen = Gen(3)
    members = []
    for index in range(3):
        context = SpanContext(trace_id="t{}".format(index), span_id="s{}".format(index))
        members.append(dataclasses.replace(gen.payload(), trace=context))
    bundle = Bundle(payloads=tuple(members), trace=members[0].trace)
    decoded = decode_envelope(encode_envelope(bundle))
    assert decoded.trace == bundle.trace
    for original, restored in zip(members, decoded.payloads):
        assert restored == original
        assert restored.trace == original.trace


def test_untraced_bytes_are_byte_identical_to_pre_trace_format():
    """With tracing off the wire format is unchanged: no ``tr`` key at all."""
    for seed in range(4):
        gen = Gen(seed)
        for _ in range(25):
            payload = gen.payload()
            assert payload.trace is None
            data = encode_envelope(payload)
            assert b'"tr"' not in data


def test_trace_is_ignored_by_equality_and_equivalence():
    import dataclasses

    from repro.obs.trace import SpanContext

    gen = Gen(5)
    payload = gen.payload()
    traced = dataclasses.replace(
        payload, trace=SpanContext(trace_id="t1", span_id="s1")
    )
    assert traced == payload
    assert hash(traced) == hash(payload)
    assert payloads_equivalent(traced, payload)
