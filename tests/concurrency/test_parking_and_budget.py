"""Asynchronous frontier parking and budget-exhaustion status.

Covers the suspend/resume machinery the service layer is built on: updates
parking in ``WAITING_FRONTIER`` under a :class:`DeferredOracle` (with no
busy-stepping), resuming with posted answers, cancellation on abort — and the
``BUDGET_EXHAUSTED`` status stamped by both the single-version engine and the
scheduler's stall path.
"""

import pytest

from repro.core import (
    ChaseConfig,
    ChaseEngine,
    DeferredOracle,
    InsertOperation,
    RandomOracle,
    UpdateStatus,
    make_tuple,
)
from repro.core.frontier import UnifyOperation
from repro.core.oracle import AlwaysExpandOracle
from repro.concurrency import OptimisticScheduler, PreciseTracker, SchedulerStalled
from repro.fixtures import genealogy_repository
from repro.storage.versioned import VersionedDatabase


def _genealogy_scheduler(oracle, **kwargs):
    database, mappings = genealogy_repository()
    store = VersionedDatabase(database.schema)
    store.load_initial(database.snapshot())
    return OptimisticScheduler(
        store=store,
        mappings=mappings,
        tracker=PreciseTracker(),
        oracle=oracle,
        **kwargs
    )


def _unify_alternative(decision):
    return [
        alternative
        for alternative in decision.alternatives()
        if isinstance(alternative, UnifyOperation)
    ][0]


class TestParking:
    def test_update_parks_and_takes_no_steps_while_parked(self):
        oracle = DeferredOracle()
        scheduler = _genealogy_scheduler(oracle)
        priority = scheduler.submit(InsertOperation(make_tuple("Person", "John")))
        scheduler.pump()
        execution = scheduler.execution(priority)
        assert execution.is_parked
        assert execution.status is UpdateStatus.WAITING_FRONTIER
        assert not execution.is_active
        assert scheduler.parked_executions() == [execution]
        assert scheduler.is_idle
        assert len(oracle.pending()) == 1
        # Pumping again must do nothing: no busy-stepping while parked.
        steps_before = execution.steps_taken
        assert scheduler.pump() == 0
        assert scheduler.pump() == 0
        assert execution.steps_taken == steps_before
        assert scheduler.statistics.frontier_parks == 1

    def test_resume_continues_to_termination_and_commit(self):
        oracle = DeferredOracle()
        scheduler = _genealogy_scheduler(oracle)
        priority = scheduler.submit(InsertOperation(make_tuple("Person", "John")))
        scheduler.pump()
        decision = oracle.pending()[0]
        oracle.post(decision.decision_id, _unify_alternative(decision))
        scheduler.resume(priority, decision.answer)
        execution = scheduler.execution(priority)
        assert execution.is_active
        scheduler.pump()
        assert execution.is_terminated
        assert scheduler.committed_priorities() == {priority}
        assert scheduler.commit_watermark() == priority
        final = scheduler.final_database()
        assert set(final.tuples("Person")) == {make_tuple("Person", "John")}
        assert set(final.tuples("Father")) == {make_tuple("Father", "John", "John")}
        assert scheduler.statistics.frontier_resumes == 1

    def test_resume_requires_a_parked_execution(self):
        oracle = DeferredOracle()
        scheduler = _genealogy_scheduler(oracle)
        priority = scheduler.submit(InsertOperation(make_tuple("Person", "John")))
        with pytest.raises(RuntimeError, match="not parked"):
            scheduler.resume(
                priority, UnifyOperation  # type: ignore[arg-type]
            )
        with pytest.raises(KeyError):
            scheduler.resume(42, None)  # type: ignore[arg-type]

    def test_batch_run_raises_on_unanswered_parks(self):
        oracle = DeferredOracle()
        scheduler = _genealogy_scheduler(oracle)
        scheduler.submit(InsertOperation(make_tuple("Person", "John")))
        with pytest.raises(SchedulerStalled, match="parked"):
            scheduler.run()

    def test_abort_of_parked_execution_cancels_its_decision(self):
        oracle = DeferredOracle()
        scheduler = _genealogy_scheduler(oracle)
        priority = scheduler.submit(InsertOperation(make_tuple("Person", "John")))
        scheduler.pump()
        execution = scheduler.execution(priority)
        decision = execution.pending_decision
        execution.abort()
        assert decision.cancelled
        assert oracle.pending() == []
        assert execution.pending_decision is None

    def test_commit_watermark_waits_for_the_lowest_parked_update(self):
        oracle = DeferredOracle()
        scheduler = _genealogy_scheduler(oracle)
        first = scheduler.submit(InsertOperation(make_tuple("Person", "Ada")))
        second = scheduler.submit(InsertOperation(make_tuple("Person", "Bea")))
        scheduler.pump()
        decisions = {d.decision_id: d for d in oracle.pending()}
        assert len(decisions) == 2
        # Answer only the *second* update's question: it terminates but must
        # not commit while the first still waits at the frontier.
        second_decision = oracle.pending()[1]
        oracle.post(second_decision.decision_id, _unify_alternative(second_decision))
        scheduler.resume(second, second_decision.answer)
        scheduler.pump()
        assert scheduler.execution(second).is_terminated
        assert scheduler.committed_priorities() == set()
        assert scheduler.commit_watermark() == 0
        first_decision = oracle.pending()[0]
        oracle.post(first_decision.decision_id, _unify_alternative(first_decision))
        scheduler.resume(first, first_decision.answer)
        scheduler.pump()
        assert scheduler.committed_priorities() == {first, second}

    def test_pump_respects_max_steps(self):
        oracle = RandomOracle(seed=0)
        scheduler = _genealogy_scheduler(oracle)
        scheduler.submit(InsertOperation(make_tuple("Person", "John")))
        taken = scheduler.pump(max_steps=1)
        assert taken == 1
        total = taken
        while not scheduler.is_idle:
            total += scheduler.pump(max_steps=1)
        assert scheduler.execution(1).is_terminated
        assert scheduler.statistics.steps == total


class TestBudgetExhausted:
    def test_engine_stamps_budget_exhausted_status(self):
        database, mappings = genealogy_repository()
        engine = ChaseEngine(
            database,
            mappings,
            oracle=AlwaysExpandOracle(),  # never terminates on the cyclic mapping
            config=ChaseConfig(max_steps=5),
        )
        record = engine.run(InsertOperation(make_tuple("Person", "John")))
        assert not record.terminated
        assert record.status is UpdateStatus.BUDGET_EXHAUSTED

    def test_frontier_budget_also_stamps_the_status(self):
        database, mappings = genealogy_repository()
        engine = ChaseEngine(
            database,
            mappings,
            oracle=AlwaysExpandOracle(),
            config=ChaseConfig(max_frontier_operations=2),
        )
        record = engine.run(InsertOperation(make_tuple("Person", "John")))
        assert not record.terminated
        assert record.status is UpdateStatus.BUDGET_EXHAUSTED

    def test_scheduler_stall_stamps_active_executions(self):
        oracle = AlwaysExpandOracle()  # endless expansion: the stall is real
        scheduler = _genealogy_scheduler(oracle, max_total_steps=10)
        priority = scheduler.submit(InsertOperation(make_tuple("Person", "John")))
        with pytest.raises(SchedulerStalled):
            scheduler.run()
        execution = scheduler.execution(priority)
        assert execution.status is UpdateStatus.BUDGET_EXHAUSTED
        assert not execution.is_active

    def test_budget_exhausted_is_not_active(self):
        # The scheduler must not keep stepping a budget-exhausted execution.
        oracle = AlwaysExpandOracle()
        scheduler = _genealogy_scheduler(oracle, max_total_steps=10)
        scheduler.submit(InsertOperation(make_tuple("Person", "John")))
        with pytest.raises(SchedulerStalled):
            scheduler.pump()
        assert scheduler.is_idle
        assert scheduler.pump() == 0
