"""Differential suite: the group-commit path ≡ the singleton commit path.

Group commit amortizes per-commit fixed costs — one watermark advance, one
batch-listener round, one compaction sweep per maximal run of terminated
updates — but must not change anything the paper measures: the committed
store, the abort/cascade counters and the cost-model panels have to be
bit-identical to committing every update as its own singleton batch.  These
tests run randomized workloads (insert-only and mixed, several trackers and
seeds) through both paths and compare everything.
"""

from __future__ import annotations

import pytest

from repro.concurrency.dependencies import make_tracker
from repro.concurrency.optimistic import OptimisticScheduler
from repro.concurrency.policies import make_policy
from repro.core.oracle import RandomOracle
from repro.core.terms import NullFactory
from repro.storage.versioned import VersionedDatabase
from repro.workload.experiment import (
    ExperimentConfig,
    INSERT_WORKLOAD,
    MIXED_WORKLOAD,
    build_environment,
    build_workload,
)
from repro.workload.mapping_gen import mapping_prefix

#: The statistics fields that must be bit-identical between the two paths
#: (the Figure 3/4 panel inputs plus everything execution-order sensitive).
PANEL_FIELDS = (
    "updates_submitted",
    "updates_executed",
    "updates_terminated",
    "aborts",
    "direct_aborts",
    "cascading_aborts",
    "cascading_abort_requests",
    "steps",
    "writes",
    "read_queries",
    "frontier_operations",
    "tracker_cost_units",
    "conflict_cost_units",
    "chase_cost_units",
)


def _run(environment, operations, mappings, tracker_name, seed, group_commit,
         scheduler_class=OptimisticScheduler, **scheduler_kwargs):
    store = VersionedDatabase(environment.schema)
    store.load_initial(environment.initial)
    scheduler = scheduler_class(
        store=store,
        mappings=mappings,
        tracker=make_tracker(tracker_name),
        oracle=RandomOracle(seed=seed),
        policy=make_policy("round-robin-step"),
        null_factory=NullFactory.avoiding_view(environment.initial, prefix="g"),
        group_commit=group_commit,
        **scheduler_kwargs,
    )
    scheduler.submit_all(operations)
    statistics = scheduler.run()
    return scheduler, statistics


def _assert_identical(environment, operations, mappings, tracker_name, seed):
    grouped, grouped_stats = _run(
        environment, operations, mappings, tracker_name, seed, group_commit=True
    )
    single, single_stats = _run(
        environment, operations, mappings, tracker_name, seed, group_commit=False
    )
    # Same committed repository, exactly (same seeds => same nulls).
    assert grouped.final_database().to_dict() == single.final_database().to_dict()
    # Same panels, counter for counter.
    for field in PANEL_FIELDS:
        assert getattr(grouped_stats, field) == getattr(single_stats, field), field
    # Same commit order and watermark.
    assert grouped.committed_priorities() == single.committed_priorities()
    assert grouped.commit_watermark() == single.commit_watermark()
    # The batching itself: both commit the same number of members, the group
    # path in no more (usually fewer) batches and compaction sweeps.
    assert grouped_stats.group_commit_members == single_stats.group_commit_members
    assert grouped_stats.group_commits <= single_stats.group_commits
    assert grouped.store.compactions <= single.store.compactions
    assert grouped_stats.group_commit_fallbacks == 0
    return grouped_stats, single_stats


@pytest.mark.parametrize("tracker_name", ["PRECISE", "COARSE", "NAIVE"])
@pytest.mark.parametrize("seed", [0, 1])
def test_insert_workloads_are_bit_identical(tracker_name, seed):
    config = ExperimentConfig.tiny_scale().scaled(seed=2009 + seed)
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, 10)
    operations = build_workload(environment, INSERT_WORKLOAD, config.seed)
    _assert_identical(environment, operations, mappings, tracker_name, config.seed)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_mixed_workloads_are_bit_identical(seed):
    config = ExperimentConfig.tiny_scale().scaled(seed=7 + seed, num_updates=16)
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, 10)
    operations = build_workload(environment, MIXED_WORKLOAD, config.seed)
    grouped_stats, _ = _assert_identical(
        environment, operations, mappings, "PRECISE", config.seed
    )
    assert grouped_stats.group_commit_members == grouped_stats.updates_terminated


def test_batch_listener_sees_union_write_set_once_per_batch():
    config = ExperimentConfig.tiny_scale()
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, 10)
    operations = build_workload(environment, INSERT_WORKLOAD, config.seed)

    store = VersionedDatabase(environment.schema)
    store.load_initial(environment.initial)
    scheduler = OptimisticScheduler(
        store=store,
        mappings=mappings,
        tracker=make_tracker("COARSE"),
        oracle=RandomOracle(seed=0),
        null_factory=NullFactory.avoiding_view(environment.initial, prefix="g"),
    )
    per_priority = []
    batches = []
    scheduler.add_commit_listener(
        lambda priority, writes: per_priority.append((priority, list(writes)))
    )
    scheduler.add_batch_commit_listener(lambda commits: batches.append(list(commits)))
    scheduler.submit_all(operations)
    scheduler.run()

    # Flattening the batch stream reproduces the per-priority stream exactly:
    # the union write set is the same writes, delivered once per batch.
    flattened = [(priority, writes) for batch in batches for priority, writes in batch]
    assert [priority for priority, _ in flattened] == [p for p, _ in per_priority]
    for (_, batch_writes), (_, single_writes) in zip(flattened, per_priority):
        assert batch_writes == single_writes
    assert len(batches) == scheduler.statistics.group_commits
    assert all(batch for batch in batches)
    assert sum(len(batch) for batch in batches) == len(scheduler.committed_priorities())


def test_failed_validation_falls_back_to_singletons():
    """A vetoed batch commits member-by-member with identical results."""

    class VetoingScheduler(OptimisticScheduler):
        def _validate_group(self, batch):
            return False

    config = ExperimentConfig.tiny_scale()
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, 10)
    operations = build_workload(environment, INSERT_WORKLOAD, config.seed)

    vetoed, vetoed_stats = _run(
        environment, operations, mappings, "PRECISE", config.seed,
        group_commit=True, scheduler_class=VetoingScheduler,
        # The proof-carrying fast path would bypass the vetoed validation
        # entirely; this test is about the fallback, so force validation.
        proof_carrying_commit=False,
    )
    single, single_stats = _run(
        environment, operations, mappings, "PRECISE", config.seed, group_commit=False
    )
    assert vetoed.final_database().to_dict() == single.final_database().to_dict()
    for field in PANEL_FIELDS:
        assert getattr(vetoed_stats, field) == getattr(single_stats, field), field
    # Every multi-member batch was vetoed and fell back.
    assert vetoed_stats.group_commits == single_stats.group_commits
    assert vetoed_stats.group_commit_fallbacks >= 0


@pytest.mark.parametrize("workload", [INSERT_WORKLOAD, MIXED_WORKLOAD])
@pytest.mark.parametrize("seed", [0, 1])
def test_proof_carrying_commit_skips_redundant_validation(workload, seed):
    """The fast path skips read-log re-checks with bit-identical semantics.

    Proof-carrying commit tracks "validated since the last conflict" per
    execution; when a whole batch carries the proof, the group-commit
    validation is skipped.  Both the committed store and every panel counter
    must match the always-validate path exactly, and on these workloads the
    fast path must actually fire (multi-member batches exist).
    """
    config = ExperimentConfig.tiny_scale()
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, 10)
    operations = build_workload(environment, workload, seed)

    fast, fast_stats = _run(
        environment, operations, mappings, "PRECISE", seed,
        group_commit=True, proof_carrying_commit=True,
    )
    checked, checked_stats = _run(
        environment, operations, mappings, "PRECISE", seed,
        group_commit=True, proof_carrying_commit=False,
    )
    assert fast.final_database().to_dict() == checked.final_database().to_dict()
    for field in PANEL_FIELDS:
        assert getattr(fast_stats, field) == getattr(checked_stats, field), field
    # Same batching either way; the only difference is validation work.
    assert fast_stats.group_commits == checked_stats.group_commits
    assert fast_stats.group_commit_members == checked_stats.group_commit_members
    assert fast_stats.group_commit_fallbacks == checked_stats.group_commit_fallbacks == 0
    if checked_stats.group_validation_cost_units > 0:
        # Every multi-member batch skipped its validation on the fast path.
        assert fast_stats.group_validation_skips > 0
        assert fast_stats.group_validation_cost_units == 0
    assert checked_stats.group_validation_skips == 0


def test_group_validation_passes_on_clean_runs():
    """Eager conflict processing leaves nothing for validation to find."""
    config = ExperimentConfig.tiny_scale()
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, 10)
    operations = build_workload(environment, INSERT_WORKLOAD, config.seed)
    grouped, stats = _run(
        environment, operations, mappings, "PRECISE", config.seed, group_commit=True
    )
    assert stats.group_commit_fallbacks == 0
    # Validation cost is tracked, but outside the cost-model panels.
    assert stats.group_validation_cost_units >= 0
    assert stats.total_cost_units == (
        stats.tracker_cost_units + stats.conflict_cost_units + stats.chase_cost_units
    )
