"""Tests for step-wise update execution, policies and the optimistic scheduler."""

import pytest

from repro.concurrency import (
    CoarseTracker,
    LowestPriorityFirstPolicy,
    NaiveTracker,
    OptimisticScheduler,
    PreciseTracker,
    RoundRobinStepPolicy,
    RoundRobinStratumPolicy,
    databases_isomorphic,
    make_policy,
    run_concurrent_updates,
)
from repro.concurrency.conflicts import find_direct_conflicts
from repro.concurrency.execution import UpdateExecution
from repro.concurrency.readlog import ReadLog
from repro.core import (
    DeleteOperation,
    InsertOperation,
    RandomOracle,
    ScriptedOracle,
    satisfies_all,
)
from repro.core.oracle import AlwaysUnifyOracle
from repro.core.terms import NullFactory
from repro.core.tuples import make_tuple
from repro.core.update import UpdateStatus
from repro.core.writes import insert
from repro.storage.versioned import VersionedDatabase
from repro.fixtures import travel_database, travel_mappings


def _fresh_store():
    database = travel_database()
    store = VersionedDatabase(database.schema)
    store.load_initial(database.snapshot())
    return store


class TestUpdateExecution:
    def test_single_step_insert_terminates_after_repair(self):
        store = _fresh_store()
        mappings = travel_mappings()
        execution = UpdateExecution(
            priority=1,
            operation=InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")),
            store=store,
            mappings=list(mappings),
            oracle=AlwaysUnifyOracle(),
            null_factory=NullFactory(prefix="c"),
        )
        first = execution.run_step()
        assert len(first.applied) == 1
        assert not first.terminated
        second = execution.run_step()
        assert len(second.applied) == 1  # the generated review tuple
        assert second.terminated
        assert execution.is_terminated
        # Further steps are no-ops once the update has terminated.
        third = execution.run_step()
        assert third.terminated and third.applied == []
        assert execution.steps_taken == 2
        assert store.latest_view().contains(
            make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        )

    def test_noop_operation_terminates_immediately(self):
        store = _fresh_store()
        execution = UpdateExecution(
            priority=1,
            operation=InsertOperation(make_tuple("C", "Ithaca")),
            store=store,
            mappings=list(travel_mappings()),
            oracle=AlwaysUnifyOracle(),
            null_factory=NullFactory(prefix="c"),
        )
        result = execution.run_step()
        assert result.terminated
        assert result.applied == []

    def test_reads_are_reported_to_the_recorder(self):
        store = _fresh_store()
        execution = UpdateExecution(
            priority=1,
            operation=InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")),
            store=store,
            mappings=list(travel_mappings()),
            oracle=AlwaysUnifyOracle(),
            null_factory=NullFactory(prefix="c"),
        )
        seen = []
        execution.run_step(lambda query, answer: seen.append(query.kind))
        assert "violation" in seen

    def test_abort_and_restart(self):
        store = _fresh_store()
        execution = UpdateExecution(
            priority=1,
            operation=InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")),
            store=store,
            mappings=list(travel_mappings()),
            oracle=AlwaysUnifyOracle(),
            null_factory=NullFactory(prefix="c"),
        )
        execution.run_step()
        execution.abort()
        assert execution.is_aborted
        assert not execution.is_active
        restart = execution.restart_as(10)
        assert restart.priority == 10
        assert restart.attempt == 2
        assert restart.operation is execution.operation
        assert restart.is_active or restart.status is UpdateStatus.PENDING

    def test_frontier_consumption_is_reported(self):
        store = _fresh_store()
        execution = UpdateExecution(
            priority=1,
            operation=DeleteOperation(make_tuple("R", "XYZ", "Geneva Winery", "Great!")),
            store=store,
            mappings=list(travel_mappings()),
            oracle=RandomOracle(seed=0),
            null_factory=NullFactory(prefix="c"),
        )
        results = []
        while execution.is_active and len(results) < 10:
            results.append(execution.run_step())
        assert any(result.frontier_consumed for result in results)
        assert execution.frontier_operations >= 1


class TestDirectConflicts:
    def test_write_invalidating_a_logged_read_is_detected(self):
        store = _fresh_store()
        mappings = travel_mappings()
        log = ReadLog()
        # Update 2 logged sigma4's violation query (it reads V and T).
        from repro.query.violation_query import ViolationQuery

        query = ViolationQuery(mappings.by_name("sigma4"))
        log.record(2, query, set())
        # Update 1 inserts a new convention in Syracuse: together with the
        # existing tour it creates a fresh sigma4 witness, so the answer to
        # update 2's logged query changes retroactively.
        logged = store.apply_write(
            insert(make_tuple("V", "Syracuse", "Math Conf")), priority=1
        )
        report = find_direct_conflicts([logged], log, store, {1, 2})
        assert report.direct_conflicts == {2}
        assert report.pairs_checked >= 1

    def test_unrelated_write_is_ignored(self):
        store = _fresh_store()
        mappings = travel_mappings()
        log = ReadLog()
        from repro.query.violation_query import ViolationQuery

        log.record(2, ViolationQuery(mappings.by_name("sigma4")), set())
        logged = store.apply_write(insert(make_tuple("C", "Utica")), priority=1)
        report = find_direct_conflicts([logged], log, store, {1, 2})
        assert report.direct_conflicts == set()

    def test_writes_only_condemn_higher_numbered_readers(self):
        store = _fresh_store()
        mappings = travel_mappings()
        log = ReadLog()
        from repro.query.violation_query import ViolationQuery

        log.record(1, ViolationQuery(mappings.by_name("sigma4")), set())
        logged = store.apply_write(
            insert(make_tuple("T", "Geneva Winery", "New Co", "Syracuse")), priority=3
        )
        report = find_direct_conflicts([logged], log, store, {1, 3})
        assert report.direct_conflicts == set()


class TestPolicies:
    def test_round_robin_cycles_through_priorities(self):
        policy = RoundRobinStepPolicy()

        class Stub:
            def __init__(self, priority):
                self.priority = priority
                self.is_active = True

        ready = [Stub(1), Stub(2), Stub(3)]
        chosen = [policy.next_update(ready).priority for _ in range(4)]
        assert chosen == [1, 2, 3, 1]

    def test_make_policy_names(self):
        assert isinstance(make_policy("round-robin"), RoundRobinStepPolicy)
        assert isinstance(make_policy("stratum"), RoundRobinStratumPolicy)
        assert isinstance(make_policy("serial"), LowestPriorityFirstPolicy)
        with pytest.raises(ValueError):
            make_policy("nope")


class TestOptimisticScheduler:
    def _operations(self):
        return [
            InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")),
            InsertOperation(make_tuple("V", "Syracuse", "Math Conf")),
            InsertOperation(make_tuple("C", "Utica")),
            DeleteOperation(make_tuple("E", "Science Conf", "Geneva Winery")),
        ]

    @pytest.mark.parametrize("tracker_factory", [NaiveTracker, CoarseTracker, PreciseTracker])
    def test_all_updates_terminate_and_mappings_hold(self, tracker_factory):
        database = travel_database()
        mappings = travel_mappings()
        scheduler = run_concurrent_updates(
            database.snapshot(),
            mappings,
            self._operations(),
            tracker=tracker_factory(),
            oracle=RandomOracle(seed=2),
        )
        statistics = scheduler.statistics
        assert statistics.updates_submitted == 4
        assert statistics.updates_terminated == statistics.updates_executed
        final = scheduler.final_database()
        assert satisfies_all(mappings, final)

    def test_statistics_dictionary_is_complete(self):
        database = travel_database()
        scheduler = run_concurrent_updates(
            database.snapshot(),
            travel_mappings(),
            self._operations(),
            tracker=CoarseTracker(),
            oracle=RandomOracle(seed=2),
        )
        data = scheduler.statistics.as_dict()
        for key in ("aborts", "cascading_abort_requests", "per_update_seconds", "steps"):
            assert key in data

    def test_lowest_priority_first_policy_behaves_serially(self):
        database = travel_database()
        mappings = travel_mappings()
        scheduler = run_concurrent_updates(
            database.snapshot(),
            mappings,
            self._operations(),
            tracker=CoarseTracker(),
            oracle=RandomOracle(seed=2),
            policy=LowestPriorityFirstPolicy(),
        )
        assert scheduler.statistics.aborts == 0
        assert satisfies_all(mappings, scheduler.final_database())

    def test_concurrent_result_matches_serial_reference_without_conflicts(self):
        database = travel_database()
        mappings = travel_mappings()
        operations = [
            InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")),
            InsertOperation(make_tuple("C", "Utica")),
        ]
        scheduler = run_concurrent_updates(
            database.snapshot(),
            mappings,
            operations,
            tracker=PreciseTracker(),
            oracle=AlwaysUnifyOracle(),
        )
        from repro.concurrency import SerialExecutor

        serial = SerialExecutor(database.snapshot(), mappings, oracle_factory=AlwaysUnifyOracle)
        reference = serial.run(operations)
        assert databases_isomorphic(scheduler.final_database(), reference)

    def test_commit_compaction_preserves_results_and_empties_the_log(self):
        database = travel_database()
        mappings = travel_mappings()

        def run_with(compact):
            store = _fresh_store()
            scheduler = OptimisticScheduler(
                store=store,
                mappings=mappings,
                tracker=PreciseTracker(),
                oracle=RandomOracle(seed=6),
                null_factory=NullFactory(prefix="c"),
                compact_committed=compact,
            )
            scheduler.submit_all(self._operations())
            statistics = scheduler.run()
            return store, scheduler, statistics

        compacted_store, compacted, with_compaction = run_with(True)
        plain_store, plain, without_compaction = run_with(False)
        # Compaction must not change any decision: identical statistics and
        # identical final contents.
        assert with_compaction.aborts == without_compaction.aborts
        assert (
            with_compaction.cascading_abort_requests
            == without_compaction.cascading_abort_requests
        )
        assert with_compaction.tracker_cost_units == without_compaction.tracker_cost_units
        compacted_final = compacted.final_database()
        plain_final = plain.final_database()
        for relation in compacted_final.relations():
            assert set(compacted_final.tuples(relation)) == set(
                plain_final.tuples(relation)
            )
        # Everything committed, so the compacting store's log is empty and
        # its version chains are collapsed; the plain store keeps history.
        assert compacted_store.log_size() == 0
        assert plain_store.log_size() > 0
        assert compacted_store.version_count() <= plain_store.version_count()
        assert compacted_store.compactions > 0
        assert satisfies_all(mappings, compacted.final_database())

    def test_committed_updates_are_never_aborted(self):
        database = travel_database()
        mappings = travel_mappings()
        scheduler = OptimisticScheduler(
            store=_fresh_store(),
            mappings=mappings,
            tracker=CoarseTracker(),
            oracle=RandomOracle(seed=4),
            policy=LowestPriorityFirstPolicy(),
        )
        scheduler.submit_all(self._operations())
        statistics = scheduler.run()
        # With serial execution every update commits in order, so no aborts and
        # every read log entry is eventually discarded.
        assert statistics.aborts == 0
        assert len(scheduler.read_log) == 0
