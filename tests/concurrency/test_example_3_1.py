"""The paper's Example 3.1: interference between u1 and u2, prevented by aborts."""

import pytest

from repro.concurrency import (
    CoarseTracker,
    NaiveTracker,
    PreciseTracker,
    SerialExecutor,
    databases_isomorphic,
    final_state_matches_some_serial_order,
    run_concurrent_updates,
)
from repro.core import DeleteOperation, InsertOperation, ScriptedOracle, satisfies_all
from repro.core.frontier import DeleteSubsetOperation, NegativeFrontierRequest
from repro.core.tuples import make_tuple
from repro.fixtures import travel_database, travel_mappings


def delete_the_tour(request, view):
    """The frontier decision of step 4 in Example 3.1: delete the tour tuple."""
    assert isinstance(request, NegativeFrontierRequest)
    for candidate in request.candidates:
        if candidate.relation == "T":
            return DeleteSubsetOperation((candidate,))
    return DeleteSubsetOperation((request.candidates[0],))


@pytest.fixture
def scenario():
    database = travel_database()
    mappings = travel_mappings()
    u1 = DeleteOperation(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
    u2 = InsertOperation(make_tuple("V", "Syracuse", "Math Conf"))
    return database.snapshot(), mappings, u1, u2


class TestSerialReference:
    def test_serial_u1_then_u2_produces_no_stale_excursion(self, scenario):
        initial, mappings, u1, u2 = scenario
        serial = SerialExecutor(initial, mappings, oracle_factory=lambda: ScriptedOracle([delete_the_tour]))
        final = serial.run([u1, u2])
        # The tour is gone, so the new conference gets no Geneva Winery excursion.
        assert not final.contains(make_tuple("E", "Math Conf", "Geneva Winery"))
        assert not final.contains(make_tuple("T", "Geneva Winery", "XYZ", "Syracuse"))

    def test_serial_u2_then_u1_differs(self, scenario):
        initial, mappings, u1, u2 = scenario
        serial = SerialExecutor(initial, mappings, oracle_factory=lambda: ScriptedOracle([delete_the_tour]))
        final = serial.run([u2, u1])
        # In this order the excursion idea is created before the tour disappears,
        # and nothing forces its removal (E is only on a mapping RHS).
        assert final.contains(make_tuple("E", "Math Conf", "Geneva Winery"))


class TestConcurrentExecution:
    @pytest.mark.parametrize(
        "tracker_factory", [NaiveTracker, CoarseTracker, PreciseTracker]
    )
    def test_interference_is_resolved_by_aborting_u2(self, scenario, tracker_factory):
        initial, mappings, u1, u2 = scenario
        oracle = ScriptedOracle([delete_the_tour] * 3)
        scheduler = run_concurrent_updates(
            initial, mappings, [u1, u2], tracker=tracker_factory(), oracle=oracle
        )
        statistics = scheduler.statistics
        final = scheduler.final_database()
        # u2's premature read of the tours table is detected: exactly one abort.
        assert statistics.aborts == 1
        assert statistics.updates_executed == 3
        # The final state is the serial u1 -> u2 state: no stale excursion idea.
        assert not final.contains(make_tuple("E", "Math Conf", "Geneva Winery"))
        assert satisfies_all(mappings, final)

    def test_final_state_is_serializable(self, scenario):
        initial, mappings, u1, u2 = scenario
        oracle = ScriptedOracle([delete_the_tour] * 3)
        scheduler = run_concurrent_updates(
            initial, mappings, [u1, u2], tracker=PreciseTracker(), oracle=oracle
        )
        assert final_state_matches_some_serial_order(
            initial,
            mappings,
            [u1, u2],
            scheduler.final_database(),
            oracle_factory=lambda: ScriptedOracle([delete_the_tour]),
        )

    def test_unsafe_interleaving_without_concurrency_control_is_not_serializable(self, scenario):
        """Reconstruct the bad schedule of Example 3.1 by hand and check it."""
        initial, mappings, u1, u2 = scenario
        from repro.storage.memory import MemoryDatabase

        database = MemoryDatabase(initial.schema)
        database.load_from(initial)
        # Steps 1-4 of Example 3.1, without any concurrency control:
        database.delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))        # u1 step 1
        database.insert(make_tuple("V", "Syracuse", "Math Conf"))                  # u2 step 2
        database.insert(make_tuple("E", "Math Conf", "Geneva Winery"))             # u2 step 3
        database.delete(make_tuple("T", "Geneva Winery", "XYZ", "Syracuse"))       # u1 frontier op
        observed = database.snapshot()
        # The interleaving is not serializable with respect to the priority
        # order u1 < u2 (the order Definition 3.4 is enforced against): the
        # stale excursion idea survives even though the tour is gone.
        serial = SerialExecutor(
            initial, mappings, oracle_factory=lambda: ScriptedOracle([delete_the_tour])
        )
        reference = serial.run([u1, u2])
        assert not databases_isomorphic(observed, reference)
        # (It does coincide with the other serial order, u2 -> u1, which is why
        # the paper pins serializability to the update numbering.)
        assert final_state_matches_some_serial_order(
            initial,
            mappings,
            [u1, u2],
            observed,
            oracle_factory=lambda: ScriptedOracle([delete_the_tour]),
        )


class TestIsomorphismChecker:
    def test_isomorphic_up_to_null_renaming(self, travel_db):
        from repro.core.terms import LabeledNull
        from repro.core.tuples import Tuple

        first = travel_db.snapshot()
        renamed = travel_db.copy()
        renamed.replace_null(LabeledNull("x1"), LabeledNull("y1"))
        assert databases_isomorphic(first, renamed.snapshot())

    def test_not_isomorphic_when_contents_differ(self, travel_db):
        first = travel_db.snapshot()
        other = travel_db.copy()
        other.insert(make_tuple("C", "NYC"))
        assert not databases_isomorphic(first, other.snapshot())

    def test_null_renaming_must_be_injective(self):
        from repro.core.schema import DatabaseSchema
        from repro.core.terms import LabeledNull
        from repro.core.tuples import Tuple
        from repro.storage.memory import MemoryDatabase

        schema = DatabaseSchema.from_dict({"P": ["a", "b"]})
        first = MemoryDatabase(schema)
        first.insert(Tuple("P", [LabeledNull("a1"), LabeledNull("a2")]))
        second = MemoryDatabase(schema)
        second.insert(Tuple("P", [LabeledNull("b1"), LabeledNull("b1")]))
        assert not databases_isomorphic(first, second)
        assert not databases_isomorphic(second, first)
