"""Per-relation invalidation of the PRECISE delta-verdict memo.

The memo used to clear on *every* store mutation; it now keys each entry to
the stamps of the relations the query actually reads.  These tests prove the
finer invalidation is (a) semantically invisible — every memoized verdict
equals a freshly computed one, on real abort-heavy workloads — and (b)
actually finer: verdicts survive writes into unrelated relations.
"""

from __future__ import annotations

import pytest

from repro.concurrency.dependencies import PreciseTracker, make_tracker
from repro.concurrency.optimistic import OptimisticScheduler
from repro.core.oracle import RandomOracle
from repro.core.terms import NullFactory
from repro.storage.versioned import VersionedDatabase
from repro.workload.experiment import (
    ExperimentConfig,
    INSERT_WORKLOAD,
    MIXED_WORKLOAD,
    build_environment,
    build_workload,
)
from repro.workload.mapping_gen import mapping_prefix


class ParanoidPreciseTracker(PreciseTracker):
    """PRECISE tracker that re-proves every memoized verdict from scratch."""

    def __init__(self):
        super().__init__()
        self.verdicts_checked = 0
        self.memo_hits = 0

    def _delta_verdict(self, query, reader, entry, store, view, token):
        key = (reader, query, entry.seq)
        memoized = self._memo.get(key)
        valid_hit = False
        if memoized is not None:
            verdict, stored_token = memoized
            valid_hit = stored_token is None or stored_token == token
        result = super()._delta_verdict(query, reader, entry, store, view, token)
        fresh = query.affected_by(entry.write, view)
        assert result == fresh, (
            "stale memoized delta verdict for {!r} against write seq {} "
            "(memo said {}, fresh evaluation says {})".format(
                query, entry.seq, result, fresh
            )
        )
        self.verdicts_checked += 1
        if valid_hit:
            self.memo_hits += 1
        return result


@pytest.mark.parametrize("workload_name", [INSERT_WORKLOAD, MIXED_WORKLOAD])
def test_memoized_verdicts_always_match_fresh_evaluation(workload_name):
    # The tiny scale never repeats a (reader, query, write) lookup, so use a
    # slightly larger run where the memo demonstrably gets traffic.
    config = ExperimentConfig.small_scale().scaled(num_updates=20)
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, config.mapping_counts[-1])
    store = VersionedDatabase(environment.schema)
    store.load_initial(environment.initial)
    tracker = ParanoidPreciseTracker()
    scheduler = OptimisticScheduler(
        store=store,
        mappings=mappings,
        tracker=tracker,
        oracle=RandomOracle(seed=config.seed),
        null_factory=NullFactory.avoiding_view(environment.initial, prefix="g"),
        max_total_steps=config.max_total_steps,
    )
    scheduler.submit_all(build_workload(environment, workload_name, config.seed))
    scheduler.run()
    assert tracker.verdicts_checked > 0
    # The finer invalidation must actually produce cross-mutation hits
    # (the old clear-on-every-mutation behaviour would leave only the
    # within-step repeats).
    assert tracker.memo_hits > 0


def test_memo_statistics_identical_to_unmemoized_run():
    """The memo changes wall-clock only: counters and outcomes are unchanged."""
    config = ExperimentConfig.tiny_scale()
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, config.mapping_counts[-1])

    def run(tracker):
        store = VersionedDatabase(environment.schema)
        store.load_initial(environment.initial)
        scheduler = OptimisticScheduler(
            store=store,
            mappings=mappings,
            tracker=tracker,
            oracle=RandomOracle(seed=config.seed),
            null_factory=NullFactory.avoiding_view(environment.initial, prefix="g"),
            max_total_steps=config.max_total_steps,
        )
        scheduler.submit_all(build_workload(environment, MIXED_WORKLOAD, config.seed))
        return scheduler.run()

    class UnmemoizedPrecise(PreciseTracker):
        def _delta_verdict(self, query, reader, entry, store, view, token):
            return query.affected_by(entry.write, view)

    memoized = run(make_tracker("PRECISE"))
    unmemoized = run(UnmemoizedPrecise())
    assert memoized.tracker_cost_units == unmemoized.tracker_cost_units
    assert memoized.aborts == unmemoized.aborts
    assert memoized.cascading_aborts == unmemoized.cascading_aborts
    assert memoized.steps == unmemoized.steps


def test_verdicts_survive_unrelated_mutations():
    """A write into a relation outside the query's read set keeps the memo."""
    from repro.core.schema import DatabaseSchema
    from repro.core.tgd import parse_tgd
    from repro.core.tuples import make_tuple
    from repro.core.writes import insert
    from repro.query.violation_query import ViolationQuery

    schema = DatabaseSchema.from_dict(
        {"A": ["x"], "B": ["x"], "Unrelated": ["x"]}
    )
    store = VersionedDatabase(schema)
    tgd = parse_tgd("A(x) -> B(x)", name="sigma")
    query = ViolationQuery(tgd)
    tracker = PreciseTracker()

    logged = store.apply_write(insert(make_tuple("A", "a1")), priority=1)
    assert logged is not None
    view = store.view_for(2)
    token = tracker._memo_token(query, store)
    first = tracker._delta_verdict(query, 2, logged, store, view, token)
    key = (2, query, logged.seq)
    assert key in tracker._memo

    # Mutating an unrelated relation leaves the token — and the entry — valid.
    store.apply_write(insert(make_tuple("Unrelated", "u1")), priority=3)
    token_after = tracker._memo_token(query, store)
    assert token_after == token

    # Mutating a read relation invalidates it.
    store.apply_write(insert(make_tuple("B", "b1")), priority=3)
    token_changed = tracker._memo_token(query, store)
    assert token_changed != token
    assert first == query.affected_by(logged.write, view)
