"""The indexed conflict check must be bit-identical to the historical scan.

``find_direct_conflicts`` consumes the read log's relation/null buckets and
charges skipped records arithmetically; ``find_direct_conflicts_scan`` is the
original full scan.  These tests run real concurrent workloads with the
scheduler's conflict check replaced by a wrapper that executes *both*
implementations on every batch of writes and asserts that the reports agree
counter for counter — so the Figure 3/4 conflict-cost panel inputs are pinned
while the hot path becomes sublinear.
"""

from __future__ import annotations

import random

import pytest

import repro.concurrency.optimistic as optimistic_module
from repro.concurrency.conflicts import (
    find_direct_conflicts,
    find_direct_conflicts_scan,
)
from repro.concurrency.dependencies import make_tracker
from repro.concurrency.optimistic import OptimisticScheduler
from repro.core.oracle import RandomOracle
from repro.core.terms import NullFactory
from repro.storage.versioned import VersionedDatabase
from repro.workload.experiment import (
    ExperimentConfig,
    INSERT_WORKLOAD,
    MIXED_WORKLOAD,
    build_environment,
    build_workload,
)
from repro.workload.mapping_gen import mapping_prefix


def _run_with_checked_conflicts(monkeypatch, workload_name, tracker_name, seed):
    """Run a tiny-scale workload asserting scan/indexed agreement per step."""
    config = ExperimentConfig.tiny_scale().scaled(seed=seed)
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, config.mapping_counts[-1])
    operations = build_workload(environment, workload_name, seed)

    batches = [0]

    def checked(writes, read_log, store, abortable):
        indexed = find_direct_conflicts(writes, read_log, store, abortable)
        scanned = find_direct_conflicts_scan(writes, read_log, store, abortable)
        assert indexed.direct_conflicts == scanned.direct_conflicts
        assert indexed.pairs_checked == scanned.pairs_checked
        assert indexed.delta_evaluations == scanned.delta_evaluations
        assert indexed.cost_units == scanned.cost_units
        batches[0] += 1
        return indexed

    monkeypatch.setattr(optimistic_module, "find_direct_conflicts", checked)
    store = VersionedDatabase(environment.schema)
    store.load_initial(environment.initial)
    scheduler = OptimisticScheduler(
        store=store,
        mappings=mappings,
        tracker=make_tracker(tracker_name),
        oracle=RandomOracle(seed=seed),
        null_factory=NullFactory.avoiding_view(environment.initial, prefix="g"),
        max_total_steps=config.max_total_steps,
    )
    scheduler.submit_all(operations)
    statistics = scheduler.run()
    return statistics, batches[0]


@pytest.mark.parametrize("workload_name", [INSERT_WORKLOAD, MIXED_WORKLOAD])
@pytest.mark.parametrize("tracker_name", ["COARSE", "PRECISE"])
def test_indexed_conflicts_match_scan_on_real_workloads(
    monkeypatch, workload_name, tracker_name
):
    statistics, batches = _run_with_checked_conflicts(
        monkeypatch, workload_name, tracker_name, seed=2009
    )
    assert batches > 0
    assert statistics.steps > 0


def test_indexed_conflicts_match_scan_across_seeds(monkeypatch):
    for seed in random.Random(7).sample(range(10_000), 3):
        statistics, batches = _run_with_checked_conflicts(
            monkeypatch, INSERT_WORKLOAD, "PRECISE", seed=seed
        )
        assert batches > 0


def test_scheduler_statistics_unchanged_by_indexing():
    """End-to-end: a run with the indexed check equals a run with the scan."""
    config = ExperimentConfig.tiny_scale()
    environment = build_environment(config)
    mappings = mapping_prefix(environment.mappings, config.mapping_counts[-1])

    def run(conflict_function):
        original = optimistic_module.find_direct_conflicts
        optimistic_module.find_direct_conflicts = conflict_function
        try:
            store = VersionedDatabase(environment.schema)
            store.load_initial(environment.initial)
            scheduler = OptimisticScheduler(
                store=store,
                mappings=mappings,
                tracker=make_tracker("PRECISE"),
                oracle=RandomOracle(seed=config.seed),
                null_factory=NullFactory.avoiding_view(environment.initial, prefix="g"),
                max_total_steps=config.max_total_steps,
            )
            scheduler.submit_all(build_workload(environment, MIXED_WORKLOAD, config.seed))
            statistics = scheduler.run()
            return statistics, scheduler.final_database()
        finally:
            optimistic_module.find_direct_conflicts = original

    indexed_statistics, indexed_database = run(find_direct_conflicts)
    scanned_statistics, scanned_database = run(find_direct_conflicts_scan)
    assert indexed_statistics.aborts == scanned_statistics.aborts
    assert indexed_statistics.conflict_cost_units == scanned_statistics.conflict_cost_units
    assert indexed_statistics.cascading_aborts == scanned_statistics.cascading_aborts
    assert indexed_statistics.steps == scanned_statistics.steps
    for relation in indexed_database.relations():
        assert set(indexed_database.tuples(relation)) == set(
            scanned_database.tuples(relation)
        )
