"""Tests for the read log, dependency trackers and abort consolidation."""

import pytest

from repro.concurrency.aborts import consolidate_aborts
from repro.concurrency.dependencies import (
    CoarseTracker,
    HybridTracker,
    NaiveTracker,
    PreciseTracker,
    make_tracker,
)
from repro.concurrency.readlog import ReadLog
from repro.core.terms import Constant, LabeledNull, Variable
from repro.core.tuples import Tuple, make_tuple
from repro.core.writes import insert
from repro.query.correction_query import MoreSpecificQuery, NullOccurrenceQuery
from repro.query.violation_query import ViolationQuery
from repro.storage.versioned import VersionedDatabase
from repro.fixtures import travel_database, travel_mappings


class TestReadLog:
    def test_record_and_lookup(self):
        log = ReadLog()
        query = NullOccurrenceQuery(LabeledNull("x1"))
        log.record(5, query, {2, 3})
        log.record(7, query, {5})
        assert log.readers() == [5, 7]
        assert log.dependencies_of(5) == {2, 3}
        assert log.readers_depending_on(5) == {7}
        assert log.readers_depending_on(1) == set()
        assert log.total_records() == 2

    def test_records_with_reader_above(self):
        log = ReadLog()
        query = NullOccurrenceQuery(LabeledNull("x1"))
        log.record(2, query, set())
        log.record(9, query, set())
        readers = {record.reader for record in log.records_with_reader_above(5)}
        assert readers == {9}

    def test_remove_reader(self):
        log = ReadLog()
        query = NullOccurrenceQuery(LabeledNull("x1"))
        log.record(4, query, set())
        assert log.remove_reader(4) == 1
        assert log.remove_reader(4) == 0
        assert len(log) == 0


@pytest.fixture
def conflict_setup():
    """A store where update 1 wrote a tour and update 3 wrote a city."""
    database = travel_database()
    mappings = travel_mappings()
    store = VersionedDatabase(database.schema)
    store.load_initial(database.snapshot())
    store.apply_write(insert(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")), priority=1)
    store.apply_write(insert(make_tuple("C", "Utica")), priority=3)
    return store, mappings


class TestTrackers:
    def test_naive_records_nothing(self, conflict_setup):
        store, mappings = conflict_setup
        tracker = NaiveTracker()
        query = ViolationQuery(mappings.by_name("sigma3"))
        assert tracker.dependencies(query, 5, store, store.view_for(5), {1, 3, 5}) == set()
        assert tracker.aborts_all_younger

    def test_coarse_uses_relation_overlap(self, conflict_setup):
        store, mappings = conflict_setup
        tracker = CoarseTracker()
        sigma3_query = ViolationQuery(mappings.by_name("sigma3"))  # reads A, T, R
        deps = tracker.dependencies(sigma3_query, 5, store, store.view_for(5), {1, 3, 5})
        assert deps == {1}
        sigma1_query = ViolationQuery(mappings.by_name("sigma1"))  # reads C, S
        deps = tracker.dependencies(sigma1_query, 5, store, store.view_for(5), {1, 3, 5})
        assert deps == {3}

    def test_coarse_only_counts_abortable_lower_numbered_updates(self, conflict_setup):
        store, mappings = conflict_setup
        tracker = CoarseTracker()
        query = ViolationQuery(mappings.by_name("sigma3"))
        # Update 1 is not abortable any more (e.g. committed): no dependency.
        assert tracker.dependencies(query, 5, store, store.view_for(5), {3, 5}) == set()
        # A reader numbered below the writer records no dependency either.
        assert tracker.dependencies(query, 1, store, store.view_for(1), {1, 3}) == set()

    def test_precise_only_reports_writes_that_change_the_answer(self, conflict_setup):
        store, mappings = conflict_setup
        tracker = PreciseTracker()
        # The sigma3 violation query's answer *is* changed by update 1's tour
        # insert (it creates a violation witness), so PRECISE agrees with COARSE.
        sigma3_query = ViolationQuery(mappings.by_name("sigma3"))
        assert tracker.dependencies(sigma3_query, 5, store, store.view_for(5), {1, 3, 5}) == {1}
        # The sigma1 violation query (every city has an airport) *is* changed by
        # update 3's insert of a new city with no airport.
        sigma1_query = ViolationQuery(mappings.by_name("sigma1"))
        assert tracker.dependencies(sigma1_query, 5, store, store.view_for(5), {1, 3, 5}) == {3}
        # A correction query about an unrelated null is influenced by neither.
        occurrence = NullOccurrenceQuery(LabeledNull("x2"))
        assert tracker.dependencies(occurrence, 5, store, store.view_for(5), {1, 3, 5}) == set()

    def test_precise_is_never_less_precise_than_coarse(self, conflict_setup):
        store, mappings = conflict_setup
        coarse, precise = CoarseTracker(), PreciseTracker()
        for tgd in mappings:
            query = ViolationQuery(tgd)
            coarse_deps = coarse.dependencies(query, 9, store, store.view_for(9), {1, 3, 9})
            precise_deps = precise.dependencies(query, 9, store, store.view_for(9), {1, 3, 9})
            assert precise_deps <= coarse_deps

    def test_precise_costs_more_than_coarse(self, conflict_setup):
        store, mappings = conflict_setup
        coarse, precise = CoarseTracker(), PreciseTracker()
        query = ViolationQuery(mappings.by_name("sigma3"))
        coarse.dependencies(query, 5, store, store.view_for(5), {1, 3, 5})
        precise.dependencies(query, 5, store, store.view_for(5), {1, 3, 5})
        assert precise.cost_units > coarse.cost_units

    def test_correction_queries_tracked_exactly_by_coarse(self, conflict_setup):
        store, mappings = conflict_setup
        tracker = CoarseTracker()
        # More-specific query over T: only update 1 wrote to T, and its tuple is
        # more specific than the fully-null pattern.
        pattern = make_tuple("T", LabeledNull("a"), LabeledNull("b"), LabeledNull("c"))
        query = MoreSpecificQuery(pattern)
        assert tracker.dependencies(query, 5, store, store.view_for(5), {1, 3, 5}) == {1}

    def test_hybrid_promotion_switches_to_precise(self, conflict_setup):
        store, mappings = conflict_setup
        tracker = HybridTracker()
        query = ViolationQuery(mappings.by_name("sigma3"))
        # Both sides read relation T, but only COARSE flags the unrelated C write.
        sigma2_query = ViolationQuery(mappings.by_name("sigma2"))
        coarse_result = tracker.dependencies(sigma2_query, 5, store, store.view_for(5), {1, 3, 5})
        tracker.promote(5)
        precise_result = tracker.dependencies(sigma2_query, 5, store, store.view_for(5), {1, 3, 5})
        assert precise_result <= coarse_result

    def test_hybrid_folds_both_sub_tracker_counters(self, conflict_setup):
        store, mappings = conflict_setup
        tracker = HybridTracker()
        query = ViolationQuery(mappings.by_name("sigma3"))
        tracker.dependencies(query, 5, store, store.view_for(5), {1, 3, 5})
        tracker.promote(5)
        tracker.dependencies(query, 5, store, store.view_for(5), {1, 3, 5})
        # One COARSE read plus one PRECISE read: both counters must aggregate
        # the sub-trackers (reads_processed used to count only the wrapper).
        assert tracker.reads_processed == 2
        assert tracker.reads_processed == (
            tracker._coarse.reads_processed + tracker._precise.reads_processed
        )
        assert tracker.cost_units == (
            tracker._coarse.cost_units + tracker._precise.cost_units
        )
        assert tracker._coarse.reads_processed == 1
        assert tracker._precise.reads_processed == 1

    def test_indexed_trackers_match_full_log_scan(self, conflict_setup):
        """COARSE/PRECISE on the indexed log ≡ the historical full-log filter."""
        store, mappings = conflict_setup
        # Add more writers, including nulls, to give the indexes something
        # real to partition.
        null = LabeledNull("zz")
        store.apply_write(
            insert(Tuple("T", (null, Constant("Tours R Us"), Constant("Lyon")))),
            priority=4,
        )
        store.apply_write(insert(make_tuple("C", "Lyon")), priority=6)
        abortable = {1, 3, 4, 6, 9}
        queries = [ViolationQuery(tgd) for tgd in mappings]
        queries.append(
            MoreSpecificQuery(
                make_tuple("T", LabeledNull("a"), LabeledNull("b"), LabeledNull("c"))
            )
        )
        queries.append(NullOccurrenceQuery(null))
        queries.append(NullOccurrenceQuery(LabeledNull("unused")))
        for reader in (2, 5, 9, 10):
            view = store.view_for(reader)
            for query in queries:
                coarse, precise = CoarseTracker(), PreciseTracker()
                coarse_deps = coarse.dependencies(query, reader, store, view, abortable)
                precise_deps = precise.dependencies(query, reader, store, view, abortable)
                # Reference: the historical scan over the full write log.
                legacy_coarse = set()
                legacy_precise = set()
                legacy_coarse_cost = 0
                legacy_precise_cost = 0
                for entry in store.write_log():
                    if entry.priority >= reader or entry.priority not in abortable:
                        continue
                    legacy_coarse_cost += 1
                    if query.kind in ("more-specific", "null-occurrence"):
                        if query.might_be_affected_by(entry.write):
                            legacy_coarse.add(entry.priority)
                    elif entry.write.relation in query.relations():
                        legacy_coarse.add(entry.priority)
                    if entry.priority in legacy_precise:
                        legacy_precise_cost += 1
                    else:
                        legacy_precise_cost += 2 * query.evaluation_cost()
                        if query.affected_by(entry.write, view):
                            legacy_precise.add(entry.priority)
                assert coarse_deps == legacy_coarse
                assert precise_deps == legacy_precise
                assert coarse.cost_units == legacy_coarse_cost
                assert precise.cost_units == legacy_precise_cost

    def test_make_tracker_names(self):
        assert isinstance(make_tracker("naive"), NaiveTracker)
        assert isinstance(make_tracker("COARSE"), CoarseTracker)
        assert isinstance(make_tracker("Precise"), PreciseTracker)
        assert isinstance(make_tracker("hybrid"), HybridTracker)
        with pytest.raises(ValueError):
            make_tracker("unknown")

    def test_reset_clears_counters(self, conflict_setup):
        store, mappings = conflict_setup
        tracker = PreciseTracker()
        tracker.dependencies(
            ViolationQuery(mappings.by_name("sigma3")), 5, store, store.view_for(5), {1, 3, 5}
        )
        assert tracker.cost_units > 0
        tracker.reset()
        assert tracker.cost_units == 0
        assert tracker.reads_processed == 0


class TestConsolidateAborts:
    def test_no_direct_conflicts_means_no_aborts(self):
        decision = consolidate_aborts(set(), ReadLog(), CoarseTracker(), {1, 2, 3})
        assert decision.all_victims() == set()
        assert decision.cascading_requests == 0

    def test_naive_aborts_every_younger_abortable_update(self):
        tracker = NaiveTracker()
        decision = consolidate_aborts({4}, ReadLog(), tracker, {2, 4, 5, 6})
        assert decision.direct == {4}
        assert decision.cascading == {5, 6}
        assert decision.cascading_requests == 2

    def test_dependency_based_cascade_is_transitive(self):
        log = ReadLog()
        query = NullOccurrenceQuery(LabeledNull("x"))
        log.record(5, query, {4})
        log.record(6, query, {5})
        log.record(7, query, {1})
        decision = consolidate_aborts({4}, log, CoarseTracker(), {4, 5, 6, 7})
        assert decision.cascading == {5, 6}
        assert 7 not in decision.all_victims()
        assert decision.cascading_requests == 2

    def test_requests_count_every_request_even_for_known_victims(self):
        log = ReadLog()
        query = NullOccurrenceQuery(LabeledNull("x"))
        # Update 6 depends on both 4 and 5, so it is requested twice.
        log.record(5, query, {4})
        log.record(6, query, {4, 5})
        decision = consolidate_aborts({4}, log, CoarseTracker(), {4, 5, 6})
        assert decision.cascading == {5, 6}
        assert decision.cascading_requests == 3

    def test_non_abortable_dependents_are_ignored(self):
        log = ReadLog()
        query = NullOccurrenceQuery(LabeledNull("x"))
        log.record(5, query, {4})
        decision = consolidate_aborts({4}, log, CoarseTracker(), {4})
        assert decision.cascading == set()
