"""Tests for SQL generation and the SQLite backend's query evaluation.

The in-memory evaluator and the SQLite-generated SQL must agree on the travel
fixture and on randomly generated small databases.
"""

import random

import pytest

from repro.core.atoms import Atom
from repro.core.terms import Constant, LabeledNull, Variable
from repro.core.tuples import Tuple, make_tuple
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.sql import decode_row, decode_term, encode_row, encode_term
from repro.query.violation_query import ViolationQuery
from repro.storage.sqlite_backend import SQLiteDatabase
from repro.workload.mapping_gen import generate_mappings
from repro.workload.schema_gen import generate_constant_pool, generate_schema


class TestTermEncoding:
    def test_round_trip_constants_and_nulls(self):
        assert decode_term(encode_term(Constant("Ithaca"))) == Constant("Ithaca")
        assert decode_term(encode_term(LabeledNull("x3"))) == LabeledNull("x3")

    def test_rows_round_trip(self):
        row = make_tuple("R", "XYZ", LabeledNull("x2"), "ok")
        assert decode_row("R", encode_row(row)) == row

    def test_malformed_encoding_rejected(self):
        with pytest.raises(ValueError):
            decode_term("weird")


@pytest.fixture
def sqlite_travel(travel_db):
    database = SQLiteDatabase(travel_db.schema)
    database.load_from(travel_db)
    yield database
    database.close()


class TestSQLiteAgainstMemory:
    def test_conjunctive_queries_agree(self, travel_db, sqlite_travel):
        atoms = [Atom("A", ["l", "n"]), Atom("T", ["n", "c", "cs"])]
        answers = [Variable("n"), Variable("c")]
        memory_result = ConjunctiveQuery(atoms, answers).evaluate(travel_db)
        sqlite_result = sqlite_travel.evaluate_conjunctive_sql(atoms, answers)
        assert memory_result == sqlite_result

    def test_violation_queries_agree_on_satisfied_database(self, travel, sqlite_travel):
        _, mappings = travel
        for tgd in mappings:
            assert sqlite_travel.evaluate_violation_sql(tgd) == frozenset()

    def test_violation_queries_agree_after_a_delete(self, travel, sqlite_travel):
        database, mappings = travel
        removed = make_tuple("R", "XYZ", "Geneva Winery", "Great!")
        database.delete(removed)
        sqlite_travel.delete(removed)
        sigma3 = mappings.by_name("sigma3")
        memory_bindings = {
            row.bindings for row in ViolationQuery(sigma3).evaluate(database)
        }
        sqlite_bindings = sqlite_travel.evaluate_violation_sql(sigma3)
        assert memory_bindings == sqlite_bindings

    def test_randomized_cross_check(self):
        rng = random.Random(99)
        schema = generate_schema(num_relations=4, max_arity=3, rng=rng)
        pool = generate_constant_pool(size=6, rng=rng)
        mappings = generate_mappings(schema, 5, rng=rng, constant_pool=pool)
        from repro.storage.memory import MemoryDatabase

        memory = MemoryDatabase(schema)
        sqlite = SQLiteDatabase(schema)
        for _ in range(60):
            relation = rng.choice(schema.relation_names())
            values = [
                LabeledNull("n{}".format(rng.randint(1, 4)))
                if rng.random() < 0.2
                else rng.choice(pool)
                for _ in range(schema.arity_of(relation))
            ]
            row = Tuple(relation, values)
            memory.insert(row)
            sqlite.insert(row)
        for tgd in mappings:
            memory_bindings = {
                row.bindings for row in ViolationQuery(tgd).evaluate(memory)
            }
            assert memory_bindings == sqlite.evaluate_violation_sql(tgd)
        sqlite.close()
