"""Cardinality-aware join ordering: correctness, tie-breaks and re-planning.

``CompiledConjunction.ordering_for`` refines the static most-bound-first
ordering with live relation cardinalities: among equally-bound atoms the
cheapest relation is matched first, and the cached ordering is re-planned
when a relation grows past the threshold.  Result *sets* must be unchanged —
only the enumeration cost moves.
"""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.schema import DatabaseSchema
from repro.core.terms import Variable
from repro.core.tuples import make_tuple
from repro.query.compiled import _cardinality_bucket, CompiledConjunction
from repro.query.homomorphism import find_matches
from repro.storage.memory import MemoryDatabase

X, Y = Variable("x"), Variable("y")
SCHEMA = DatabaseSchema.from_dict({"Big": ["x", "y"], "Small": ["x", "y"]})


def _conjunction():
    return CompiledConjunction([Atom("Big", [X, Y]), Atom("Small", [X, Y])])


def _database(big, small):
    database = MemoryDatabase(SCHEMA)
    for index in range(big):
        database.insert(make_tuple("Big", "k{}".format(index), "v{}".format(index)))
    for index in range(small):
        database.insert(make_tuple("Small", "k{}".format(index), "v{}".format(index)))
    return database


class TestCheapestFirst:
    def test_equally_bound_atoms_order_by_cardinality(self):
        conjunction = _conjunction()
        database = _database(big=30, small=2)
        ordered = conjunction.ordering_for(frozenset(), database)
        assert [atom.relation for atom, _ in ordered] == ["Small", "Big"]

    def test_boundness_still_dominates_cardinality(self):
        # An atom with more bound positions goes first even if its relation
        # is larger: binding selectivity beats relation size.
        conjunction = CompiledConjunction(
            [Atom("Big", [X, Y]), Atom("Small", [Y, Variable("z")])]
        )
        database = _database(big=30, small=2)
        ordered = conjunction.ordering_for(frozenset({X, Y}), database)
        assert [atom.relation for atom, _ in ordered] == ["Big", "Small"]

    def test_falls_back_to_static_without_estimates(self):
        class NoEstimates(MemoryDatabase):
            def cardinality_estimate(self, relation):
                return None

        conjunction = _conjunction()
        database = NoEstimates(SCHEMA)
        assert conjunction.ordering_for(frozenset(), database) == (
            conjunction.ordering(frozenset())
        )

    def test_single_atom_uses_static_path(self):
        conjunction = CompiledConjunction([Atom("Big", [X, Y])])
        database = _database(big=3, small=0)
        assert conjunction.ordering_for(frozenset(), database) == (
            conjunction.ordering(frozenset())
        )


class TestReplanning:
    def test_ordering_is_cached_within_a_size_bucket(self):
        conjunction = _conjunction()
        database = _database(big=30, small=2)
        first = conjunction.ordering_for(frozenset(), database)
        assert [atom.relation for atom, _ in first] == ["Small", "Big"]
        # Grow Small without crossing its power-of-two bucket: plan reused.
        assert _cardinality_bucket(3) == _cardinality_bucket(2)
        database.insert(make_tuple("Small", "extra", "row"))
        assert conjunction.ordering_for(frozenset(), database) is first

    def test_growth_past_a_bucket_boundary_replans(self):
        conjunction = _conjunction()
        database = _database(big=30, small=2)
        conjunction.ordering_for(frozenset(), database)
        # Cross several buckets AND pass Big's size: the re-plan must both
        # trigger and flip the order.
        assert _cardinality_bucket(102) > _cardinality_bucket(30)
        for index in range(100):
            database.insert(make_tuple("Small", "g{}".format(index), "h{}".format(index)))
        replanned = conjunction.ordering_for(frozenset(), database)
        assert [atom.relation for atom, _ in replanned] == ["Big", "Small"]

    def test_orderings_are_history_independent_across_stores(self):
        # Plans are shared process-wide: a store must get the ordering its
        # OWN statistics imply, no matter what other stores were seen first.
        conjunction = _conjunction()
        grown = _database(big=4, small=200)
        assert [
            atom.relation for atom, _ in conjunction.ordering_for(frozenset(), grown)
        ] == ["Big", "Small"]
        fresh = _database(big=30, small=2)
        assert [
            atom.relation for atom, _ in conjunction.ordering_for(frozenset(), fresh)
        ] == ["Small", "Big"]


class TestResultsUnchanged:
    def test_find_matches_agrees_with_reference_search(self):
        conjunction = _conjunction()
        database = _database(big=8, small=5)
        database.insert(make_tuple("Small", "k1", "v9"))  # a near-miss row
        expected = find_matches([Atom("Big", [X, Y]), Atom("Small", [X, Y])], database)
        actual = conjunction.find_matches(database)
        as_set = lambda matches: {
            (frozenset(assignment.items()), witness) for assignment, witness in matches
        }
        assert as_set(actual) == as_set(expected)

    def test_seeded_matches_agree_after_replan(self):
        conjunction = _conjunction()
        database = _database(big=6, small=1)
        conjunction.ordering_for(frozenset(), database)
        for index in range(40):
            database.insert(make_tuple("Small", "k{}".format(index), "v{}".format(index)))
        expected = find_matches([Atom("Big", [X, Y]), Atom("Small", [X, Y])], database)
        actual = conjunction.find_matches(database)
        as_set = lambda matches: {
            (frozenset(assignment.items()), witness) for assignment, witness in matches
        }
        assert as_set(actual) == as_set(expected)
