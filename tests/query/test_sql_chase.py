"""Differential tests: the set-based SQL chase against the Python evaluator.

The SQL path (``SqlViolationEvaluator`` over a ``DeltaMirror``) must return
exactly the ``frozenset`` of ``ViolationRow`` the Python ``ViolationQuery``
produces — bindings *and* witnesses — on full queries, seeded queries,
labeled-null-heavy stores, and delta-restricted reads over the multiversion
store.  The chase engine itself must be bit-identical with the flag on or off.
"""

import random

import pytest

from repro.core import DeleteOperation, InsertOperation, RandomOracle
from repro.core.chase import ChaseConfig, ChaseEngine
from repro.core.terms import LabeledNull
from repro.core.tuples import Tuple, make_tuple
from repro.core.writes import delete, insert
from repro.fixtures import travel_repository
from repro.query.sql_chase import (
    SqlChaseDivergence,
    SqlViolationEvaluator,
    resolve_sql_chase,
)
from repro.query.violation_query import (
    ViolationQuery,
    violation_queries_for_write_row,
)
from repro.storage.memory import MemoryDatabase
from repro.storage.mirror import DeltaMirror
from repro.storage.versioned import VersionedDatabase
from repro.workload.mapping_gen import generate_mappings
from repro.workload.schema_gen import generate_constant_pool, generate_schema


def _random_row(schema, pool, rng, relation=None, null_density=0.2):
    if relation is None:
        relation = rng.choice(schema.relation_names())
    values = [
        LabeledNull("n{}".format(rng.randint(1, 4)))
        if rng.random() < null_density
        else rng.choice(pool)
        for _ in range(schema.arity_of(relation))
    ]
    return Tuple(relation, values)


def _random_environment(seed, null_density=0.2, rows=60):
    rng = random.Random(seed)
    schema = generate_schema(num_relations=4, max_arity=3, rng=rng)
    pool = generate_constant_pool(size=6, rng=rng)
    mappings = generate_mappings(schema, 5, rng=rng, constant_pool=pool)
    database = MemoryDatabase(schema)
    for _ in range(rows):
        database.insert(_random_row(schema, pool, rng, null_density=null_density))
    return rng, schema, pool, mappings, database


def _direct_evaluator(database):
    mirror = DeltaMirror(database.schema)
    mirror.reset_from(database)
    return SqlViolationEvaluator(mirror), mirror


class TestResolveFlag:
    def test_off_spellings(self):
        for setting in ("", "0", "false", "off", "no", False, 0):
            assert resolve_sql_chase(setting) == ""

    def test_on_and_check_spellings(self):
        assert resolve_sql_chase("1") == "on"
        assert resolve_sql_chase("on") == "on"
        assert resolve_sql_chase(True) == "on"
        for setting in ("check", "differential", "diff", " CHECK "):
            assert resolve_sql_chase(setting) == "check"

    def test_none_defers_to_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SQL_CHASE", raising=False)
        assert resolve_sql_chase(None) == ""
        monkeypatch.setenv("REPRO_SQL_CHASE", "1")
        assert resolve_sql_chase(None) == "on"
        monkeypatch.setenv("REPRO_SQL_CHASE", "check")
        assert resolve_sql_chase(None) == "check"


class TestDirectDifferential:
    @pytest.mark.parametrize("seed", [7, 21, 99])
    def test_randomized_full_queries(self, seed):
        _, _, _, mappings, database = _random_environment(seed)
        evaluator, mirror = _direct_evaluator(database)
        for tgd in mappings:
            query = ViolationQuery(tgd)
            assert evaluator.evaluate(query, database) == query.evaluate(database)
        mirror.close()

    @pytest.mark.parametrize("seed", [5, 42])
    def test_randomized_seeded_queries(self, seed):
        rng, schema, pool, mappings, database = _random_environment(seed)
        evaluator, mirror = _direct_evaluator(database)
        rows = [_random_row(schema, pool, rng) for _ in range(10)]
        rows += [
            row
            for relation in schema.relation_names()
            for row in list(database.tuples(relation))[:3]
        ]
        checked = 0
        for row in rows:
            for tgd in mappings:
                for removed in (False, True):
                    for query in violation_queries_for_write_row(
                        tgd, row, removed=removed
                    ):
                        assert evaluator.evaluate(query, database) == query.evaluate(
                            database
                        )
                        checked += 1
        assert checked > 0
        mirror.close()

    def test_labeled_null_heavy_store(self):
        _, _, _, mappings, database = _random_environment(13, null_density=0.6)
        evaluator, mirror = _direct_evaluator(database)
        for tgd in mappings:
            query = ViolationQuery(tgd)
            assert evaluator.evaluate(query, database) == query.evaluate(database)
        mirror.close()

    def test_travel_fixture_after_mutations(self):
        database, mappings = travel_repository()
        evaluator, mirror = _direct_evaluator(database)
        for tgd in mappings:
            query = ViolationQuery(tgd)
            assert evaluator.evaluate(query, database) == frozenset()
        # Mutate the database, re-shadow (the direct-mode contract), re-check.
        database.delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
        database.insert(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))
        mirror.reset_from(database)
        found = 0
        for tgd in mappings:
            query = ViolationQuery(tgd)
            answer = evaluator.evaluate(query, database)
            assert answer == query.evaluate(database)
            found += len(answer)
        assert found > 0  # the delete and the insert both violate mappings
        mirror.close()


class TestStatementCache:
    def test_repeat_evaluations_reuse_the_skeleton(self):
        database, mappings = travel_repository()
        evaluator, mirror = _direct_evaluator(database)
        query = ViolationQuery(next(iter(mappings)))
        evaluator.evaluate(query, database)
        assert evaluator.statements_rendered == 1
        assert evaluator.statement_cache_hits == 0
        evaluator.evaluate(query, database)
        evaluator.evaluate(query, database)
        assert evaluator.statements_rendered == 1
        assert evaluator.statement_cache_hits == 2
        mirror.close()

    def test_seed_values_share_one_skeleton(self):
        database, mappings = travel_repository()
        evaluator, mirror = _direct_evaluator(database)
        tgd = mappings.by_name("sigma3")
        rows = [
            make_tuple("A", "Geneva", "Geneva Winery"),
            make_tuple("A", "Trumansburg", "Taughannock Falls"),
        ]
        rendered = set()
        for row in rows:
            for query in violation_queries_for_write_row(tgd, row, removed=False):
                assert evaluator.evaluate(query, database) == query.evaluate(database)
                rendered.add(evaluator.statements_rendered)
        # Same seed-variable set, different seed values: one skeleton total.
        assert evaluator.statements_rendered == 1
        assert evaluator.statement_cache_hits >= 1
        mirror.close()


def _versioned_travel():
    database, mappings = travel_repository()
    store = VersionedDatabase(database.schema)
    store.load_initial(database.snapshot())
    mirror = DeltaMirror(store.schema)
    mirror.attach_store(store)
    return store, mappings, mirror


def _assert_agreement(evaluator, mappings, view):
    for tgd in mappings:
        query = ViolationQuery(tgd)
        assert evaluator.evaluate(query, view) == query.evaluate(view)


class TestVersionedDelta:
    def test_delta_restricted_reads_agree_per_priority(self):
        store, mappings, mirror = _versioned_travel()
        evaluator = SqlViolationEvaluator(mirror)
        store.apply_writes(
            [insert(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))], 1
        )
        store.apply_writes(
            [delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))], 2
        )
        store.apply_writes(
            [
                insert(make_tuple("A", "Toronto", "Niagara Falls")),
                delete(make_tuple("A", "Geneva", "Geneva Winery")),
            ],
            3,
        )
        for priority in (0, 1, 2, 3):
            _assert_agreement(evaluator, mappings, store.view_for(priority))
        assert evaluator.evaluations > 0
        mirror.close()

    def test_rollback_and_compaction_keep_agreement(self):
        store, mappings, mirror = _versioned_travel()
        evaluator = SqlViolationEvaluator(mirror)
        store.apply_writes(
            [insert(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))], 1
        )
        store.apply_writes(
            [delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))], 2
        )
        store.rollback(2)
        for priority in (0, 1):
            _assert_agreement(evaluator, mappings, store.view_for(priority))
        store.compact_below(1, [1])  # commit priority 1; pushes its entries
        store.apply_writes(
            [delete(make_tuple("A", "Geneva", "Geneva Winery"))], 4
        )
        for priority in (1, 3, 4):
            _assert_agreement(evaluator, mappings, store.view_for(priority))
        assert mirror.syncs > 0
        assert mirror.entries_applied > 0
        mirror.close()

    @pytest.mark.parametrize("seed", [11, 77])
    def test_randomized_versioned_histories(self, seed):
        rng = random.Random(seed)
        schema = generate_schema(num_relations=4, max_arity=3, rng=rng)
        pool = generate_constant_pool(size=6, rng=rng)
        mappings = generate_mappings(schema, 5, rng=rng, constant_pool=pool)
        initial = MemoryDatabase(schema)
        for _ in range(40):
            initial.insert(_random_row(schema, pool, rng))
        store = VersionedDatabase(schema)
        store.load_initial(initial.snapshot())
        mirror = DeltaMirror(schema)
        mirror.attach_store(store)
        evaluator = SqlViolationEvaluator(mirror)
        watermark = 0
        in_flight = []
        for priority in range(1, 9):
            writes = []
            for _ in range(rng.randint(1, 3)):
                visible = list(
                    store.view_for(priority).tuples(rng.choice(schema.relation_names()))
                )
                if visible and rng.random() < 0.4:
                    writes.append(delete(rng.choice(visible)))
                else:
                    writes.append(insert(_random_row(schema, pool, rng)))
            store.apply_writes(writes, priority)
            in_flight.append(priority)
            action = rng.random()
            if action < 0.3 and in_flight:
                committed = in_flight.pop(0)
                watermark = committed
                store.compact_below(watermark, [committed])
            elif action < 0.45 and in_flight:
                store.rollback(in_flight.pop())
            for probe in [watermark] + in_flight:
                _assert_agreement(evaluator, mappings, store.view_for(probe))
        mirror.close()


class TestChaseEngineFlag:
    def _operations(self):
        return [
            InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")),
            DeleteOperation(make_tuple("R", "XYZ", "Geneva Winery", "Great!")),
            InsertOperation(make_tuple("A", "Watkins Glen", "Watkins Glen")),
        ]

    def _run(self, sql_chase):
        database, mappings = travel_repository()
        engine = ChaseEngine(
            database,
            mappings,
            oracle=RandomOracle(seed=0),
            config=ChaseConfig(sql_chase=sql_chase),
        )
        records = engine.run_all(self._operations())
        contents = {
            relation: frozenset(database.tuples(relation))
            for relation in database.schema.relation_names()
        }
        return engine, records, contents

    def test_check_mode_is_bit_identical_to_off(self):
        _, off_records, off_contents = self._run(sql_chase=False)
        engine, on_records, on_contents = self._run(sql_chase="check")
        assert on_contents == off_contents
        for off_record, on_record in zip(off_records, on_records):
            assert on_record.status == off_record.status
            assert on_record.steps == off_record.steps
            assert on_record.writes == off_record.writes
            assert on_record.violations_processed == off_record.violations_processed
        assert engine._sql_evaluator is not None
        assert engine._sql_evaluator.evaluations > 0

    def test_divergence_raises_in_check_mode(self):
        database, mappings = travel_repository()
        mirror = DeltaMirror(database.schema)
        mirror.reset_from(database)
        evaluator = SqlViolationEvaluator(mirror, differential=True)
        # Desynchronize the mirror on purpose: the differential must notice.
        database.delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
        with pytest.raises(SqlChaseDivergence):
            for tgd in mappings:
                evaluator.evaluate(ViolationQuery(tgd), database)
        mirror.close()
