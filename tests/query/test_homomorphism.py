"""Tests for homomorphism search and conjunctive-query evaluation."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.atoms import Atom
from repro.core.schema import DatabaseSchema
from repro.core.terms import Constant, LabeledNull, Variable
from repro.core.tuples import Tuple, make_tuple
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.homomorphism import exists_match, find_matches, formula_satisfied
from repro.storage.memory import MemoryDatabase


class TestFindMatches:
    def test_single_atom_matches_every_tuple(self, travel_db):
        matches = find_matches([Atom("C", ["c"])], travel_db)
        cities = {assignment[Variable("c")] for assignment, _ in matches}
        assert cities == {Constant("Ithaca"), Constant("Syracuse")}

    def test_join_across_two_atoms(self, travel_db):
        atoms = [Atom("A", ["l", "n"]), Atom("T", ["n", "c", "cs"])]
        matches = find_matches(atoms, travel_db)
        assert len(matches) == 2
        for assignment, witness in matches:
            assert witness[0].relation == "A"
            assert witness[1].relation == "T"
            assert witness[0].values[1] == witness[1].values[0]

    def test_seed_restricts_the_search(self, travel_db):
        atoms = [Atom("A", ["l", "n"]), Atom("T", ["n", "c", "cs"])]
        seed = {Variable("n"): Constant("Geneva Winery")}
        matches = find_matches(atoms, travel_db, seed)
        assert len(matches) == 1
        assert matches[0][0][Variable("c")] == Constant("XYZ")

    def test_limit_stops_early(self, travel_db):
        matches = find_matches([Atom("C", ["c"])], travel_db, limit=1)
        assert len(matches) == 1

    def test_witness_order_follows_original_atom_order(self, travel_db):
        atoms = [Atom("T", ["n", "c", "cs"]), Atom("A", ["l", "n"])]
        for _, witness in find_matches(atoms, travel_db):
            assert witness[0].relation == "T"
            assert witness[1].relation == "A"

    def test_repeated_variables_enforce_equality(self, travel_db):
        # S(a, c, c): airports located in the city they serve.
        matches = find_matches([Atom("S", ["a", "c", "c"])], travel_db)
        assert len(matches) == 1
        assert matches[0][0][Variable("c")] == Constant("Syracuse")

    def test_labeled_nulls_are_matched_as_values(self, travel_db):
        # T(n, c, cs) with c bound to the labeled null x1 matches the Niagara tour.
        seed = {Variable("c"): LabeledNull("x1")}
        matches = find_matches([Atom("T", ["n", "c", "cs"])], travel_db, seed)
        assert len(matches) == 1

    def test_exists_match(self, travel_db):
        assert exists_match([Atom("C", ["c"])], travel_db)
        assert not exists_match(
            [Atom("C", ["c"])], travel_db, {Variable("c"): Constant("Paris")}
        )


class TestFormulaSatisfied:
    def test_satisfied_mapping(self, travel):
        database, mappings = travel
        sigma3 = mappings.by_name("sigma3")
        assert formula_satisfied(sigma3.lhs, sigma3.rhs, database)

    def test_violated_mapping(self, travel):
        database, mappings = travel
        database.delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
        sigma3 = mappings.by_name("sigma3")
        assert not formula_satisfied(sigma3.lhs, sigma3.rhs, database)


class TestConjunctiveQuery:
    def test_answer_variables_projection(self, travel_db):
        query = ConjunctiveQuery(
            [Atom("T", ["n", "c", "cs"])], answer_variables=[Variable("n")]
        )
        answers = query.evaluate(travel_db)
        assert answers == frozenset(
            {(Constant("Geneva Winery"),), (Constant("Niagara Falls"),)}
        )

    def test_default_answer_variables_are_all_variables(self, travel_db):
        query = ConjunctiveQuery([Atom("C", ["c"])])
        assert query.answer_variables == (Variable("c"),)

    def test_boolean_query(self, travel_db):
        query = ConjunctiveQuery([Atom("C", [Constant("Ithaca")])], answer_variables=[])
        assert query.is_boolean()
        assert query.holds(travel_db)
        assert query.evaluate(travel_db) == frozenset({()})

    def test_unknown_answer_variable_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([Atom("C", ["c"])], answer_variables=[Variable("z")])

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([])

    def test_relations_and_cost(self, travel_db):
        query = ConjunctiveQuery([Atom("A", ["l", "n"]), Atom("T", ["n", "c", "cs"])])
        assert query.relations() == {"A", "T"}
        assert query.evaluation_cost() >= 1

    def test_equality_and_hash(self):
        first = ConjunctiveQuery([Atom("C", ["c"])])
        second = ConjunctiveQuery([Atom("C", ["c"])])
        assert first == second
        assert hash(first) == hash(second)


# ----------------------------------------------------------------------
# Property test: the backtracking join agrees with brute-force enumeration.
# ----------------------------------------------------------------------
_VALUES = [Constant("a"), Constant("b"), LabeledNull("x")]


def _brute_force_matches(atoms, rows_by_relation):
    variables = sorted(
        {term for atom in atoms for term in atom.variable_set()},
        key=lambda variable: variable.name,
    )
    results = set()
    candidate_lists = [rows_by_relation.get(atom.relation, []) for atom in atoms]
    for combination in itertools.product(*candidate_lists):
        assignment = {}
        consistent = True
        for atom, row in zip(atoms, combination):
            extended = atom.match(row, assignment)
            if extended is None:
                consistent = False
                break
            assignment = extended
        if consistent:
            results.add(tuple(assignment[variable] for variable in variables))
    return results


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.sampled_from(["P", "Q"]),
            st.sampled_from(_VALUES),
            st.sampled_from(_VALUES),
        ),
        max_size=8,
    )
)
def test_backtracking_join_matches_brute_force(rows):
    schema = DatabaseSchema.from_dict({"P": ["a", "b"], "Q": ["a", "b"]})
    database = MemoryDatabase(schema)
    rows_by_relation = {"P": [], "Q": []}
    for relation, first, second in rows:
        row = Tuple(relation, [first, second])
        database.insert(row)
        if row not in rows_by_relation[relation]:
            rows_by_relation[relation].append(row)
    atoms = [Atom("P", ["u", "v"]), Atom("Q", ["v", "w"])]
    variables = sorted(
        {term for atom in atoms for term in atom.variable_set()},
        key=lambda variable: variable.name,
    )
    found = {
        tuple(assignment[variable] for variable in variables)
        for assignment, _ in find_matches(atoms, database)
    }
    assert found == _brute_force_matches(atoms, rows_by_relation)
