"""Tests for violation queries (Example 4.1) and correction queries."""

import pytest

from repro.core.terms import Constant, LabeledNull, Variable
from repro.core.tuples import make_tuple
from repro.core.writes import delete, insert, modify
from repro.query.correction_query import (
    MoreSpecificQuery,
    NullOccurrenceQuery,
    correction_queries_for_frontier_tuple,
)
from repro.query.violation_query import (
    ViolationQuery,
    seeds_for_lhs_write,
    seeds_for_rhs_write,
    violation_queries_for_write_row,
)


class TestViolationQuery:
    def test_satisfied_database_has_no_answers(self, travel):
        database, mappings = travel
        for tgd in mappings:
            assert ViolationQuery(tgd).evaluate(database) == frozenset()

    def test_example_4_1_deleting_the_review(self, travel):
        """Deleting R(XYZ, Geneva Winery, Great!) makes the seeded query return the A/T pair."""
        database, mappings = travel
        sigma3 = mappings.by_name("sigma3")
        removed = make_tuple("R", "XYZ", "Geneva Winery", "Great!")
        database.delete(removed)
        queries = violation_queries_for_write_row(sigma3, removed, removed=True)
        assert len(queries) == 1
        answers = queries[0].evaluate(database)
        assert len(answers) == 1
        row = next(iter(answers))
        witness_relations = [witness.relation for witness in row.witness]
        assert witness_relations == ["A", "T"]
        assignment = row.assignment()
        assert assignment[Variable("n")] == Constant("Geneva Winery")
        assert assignment[Variable("c")] == Constant("XYZ")

    def test_seed_restricts_to_the_written_tuple(self, travel):
        database, mappings = travel
        sigma3 = mappings.by_name("sigma3")
        new_tour = make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        database.insert(new_tour)
        # Unseeded query: one violation; seeded with an unrelated tour: none.
        assert len(ViolationQuery(sigma3).evaluate(database)) == 1
        unrelated_seed = {Variable("c"): Constant("XYZ"), Variable("n"): Constant("Geneva Winery")}
        assert ViolationQuery(sigma3, unrelated_seed).evaluate(database) == frozenset()

    def test_relations_include_both_sides(self, travel_maps):
        sigma3 = travel_maps.by_name("sigma3")
        assert ViolationQuery(sigma3).relations() == {"A", "T", "R"}

    def test_affected_by_write_delta_semantics(self, travel):
        database, mappings = travel
        sigma3 = mappings.by_name("sigma3")
        new_tour = make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        query = ViolationQuery(sigma3, seeds_for_lhs_write(sigma3, new_tour)[0])
        database.insert(new_tour)
        # The insert of the tour itself changes the (previously empty) answer.
        assert query.affected_by(insert(new_tour), database)
        # An insert into an unrelated relation does not.
        unrelated = make_tuple("C", "Corning")
        database.insert(unrelated)
        assert not query.affected_by(insert(unrelated), database)

    def test_equality_and_hash(self, travel_maps):
        sigma3 = travel_maps.by_name("sigma3")
        assert ViolationQuery(sigma3) == ViolationQuery(sigma3)
        assert hash(ViolationQuery(sigma3)) == hash(ViolationQuery(sigma3))
        seeded = ViolationQuery(sigma3, {Variable("c"): Constant("XYZ")})
        assert seeded != ViolationQuery(sigma3)


class TestSeeding:
    def test_lhs_seeds_bind_matching_atoms(self, travel_maps):
        sigma3 = travel_maps.by_name("sigma3")
        new_tour = make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
        seeds = seeds_for_lhs_write(sigma3, new_tour)
        assert len(seeds) == 1
        assert seeds[0][Variable("n")] == Constant("Niagara Falls")

    def test_rhs_seeds_restrict_to_frontier_variables(self, travel_maps):
        sigma3 = travel_maps.by_name("sigma3")
        removed = make_tuple("R", "XYZ", "Geneva Winery", "Great!")
        seeds = seeds_for_rhs_write(sigma3, removed)
        assert len(seeds) == 1
        # The review variable r is existential and must not be constrained.
        assert Variable("r") not in seeds[0]
        assert seeds[0][Variable("c")] == Constant("XYZ")

    def test_self_join_produces_multiple_seeds(self):
        from repro.core.tgd import parse_tgd

        tgd = parse_tgd("E(x, y), E(y, z) -> E(x, z)")
        seeds = seeds_for_lhs_write(tgd, make_tuple("E", "a", "b"))
        assert len(seeds) == 2

    def test_non_matching_row_gives_no_seed(self, travel_maps):
        sigma1 = travel_maps.by_name("sigma1")
        assert seeds_for_lhs_write(sigma1, make_tuple("T", "a", "b", "c")) == []


class TestMoreSpecificQuery:
    def test_finds_candidates(self, travel_db):
        query = MoreSpecificQuery(make_tuple("C", LabeledNull("q")))
        assert query.evaluate(travel_db) == frozenset(
            {make_tuple("C", "Ithaca"), make_tuple("C", "Syracuse")}
        )

    def test_exact_database_free_affectedness(self, travel_db):
        query = MoreSpecificQuery(make_tuple("C", LabeledNull("q")))
        assert query.affected_by(insert(make_tuple("C", "NYC")), travel_db)
        assert not query.affected_by(insert(make_tuple("V", "NYC", "Expo")), travel_db)
        # A tuple that is not more specific than the pattern cannot matter.
        pattern = MoreSpecificQuery(make_tuple("C", "Ithaca"))
        assert not pattern.affected_by(insert(make_tuple("C", "NYC")), travel_db)

    def test_modify_write_checks_both_old_and_new_content(self, travel_db):
        query = MoreSpecificQuery(make_tuple("C", LabeledNull("q")))
        write = modify(
            make_tuple("C", "Ithaca"), make_tuple("C", "Ithaca NY"), LabeledNull("z"), Constant("v")
        )
        assert query.affected_by(write, travel_db)


class TestNullOccurrenceQuery:
    def test_finds_every_occurrence(self, travel_db):
        query = NullOccurrenceQuery(LabeledNull("x1"))
        answers = query.evaluate(travel_db)
        assert answers == frozenset(
            {
                make_tuple("T", "Niagara Falls", LabeledNull("x1"), "Toronto"),
                make_tuple("R", LabeledNull("x1"), "Niagara Falls", LabeledNull("x2")),
            }
        )

    def test_affectedness_is_exact_and_database_free(self, travel_db):
        query = NullOccurrenceQuery(LabeledNull("x1"))
        assert query.affected_by(
            insert(make_tuple("R", LabeledNull("x1"), "Other", "ok")), travel_db
        )
        assert not query.affected_by(insert(make_tuple("C", "NYC")), travel_db)
        assert query.affected_by(
            delete(make_tuple("T", "Niagara Falls", LabeledNull("x1"), "Toronto")), travel_db
        )


class TestCorrectionQueriesForFrontierTuple:
    def test_occurrence_queries_only_when_candidates_exist(self, travel_db):
        frontier_row = make_tuple("C", LabeledNull("x9"))
        queries = correction_queries_for_frontier_tuple(frontier_row, travel_db)
        kinds = [query.kind for query in queries]
        assert kinds[0] == "more-specific"
        assert "null-occurrence" in kinds

    def test_no_occurrence_queries_without_candidates(self, travel_db):
        frontier_row = make_tuple("V", "Utica", LabeledNull("x9"))
        queries = correction_queries_for_frontier_tuple(frontier_row, travel_db)
        assert [query.kind for query in queries] == ["more-specific"]
