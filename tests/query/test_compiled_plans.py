"""Tests for the compiled mapping plans and the seeded violation delta test."""

import random

from repro.core.terms import Constant, LabeledNull
from repro.core.tgd import MappingSet
from repro.core.tuples import Tuple
from repro.core.writes import delete, insert, modify
from repro.fixtures import travel_database, travel_mappings
from repro.query.compiled import CompiledMappings, compile_mappings, get_plan
from repro.query.homomorphism import find_matches
from repro.query.violation_query import ViolationQuery, violation_queries_for_write_row
from repro.storage.memory import MemoryDatabase
from repro.storage.overlay import view_without_write
from repro.workload.mapping_gen import generate_mappings
from repro.workload.schema_gen import generate_constant_pool, generate_schema


class TestPlanCache:
    def test_plans_are_shared_per_mapping(self):
        mappings = travel_mappings()
        tgd = mappings.by_name("sigma1")
        assert get_plan(tgd) is get_plan(tgd)

    def test_compiled_sets_match_tgd_accessors(self):
        for tgd in travel_mappings():
            plan = get_plan(tgd)
            assert plan.lhs_variables == tgd.lhs_variables()
            assert plan.rhs_variables == tgd.rhs_variables()
            assert plan.frontier_variables == tgd.frontier_variables()
            assert plan.existential_variables == tgd.existential_variables()
            assert plan.lhs_relations == tgd.lhs_relations()
            assert plan.rhs_relations == tgd.rhs_relations()
            assert set(plan.sorted_existentials) == tgd.existential_variables()

    def test_compiled_mappings_lookup_matches_mapping_set(self):
        mappings = travel_mappings()
        compiled = CompiledMappings(mappings)
        relations = set()
        for tgd in mappings:
            relations |= tgd.relations()
        for relation in relations:
            assert [plan.tgd for plan in compiled.reading(relation)] == (
                mappings.mappings_reading(relation)
            )
            assert [plan.tgd for plan in compiled.writing(relation)] == (
                mappings.mappings_writing(relation)
            )

    def test_compile_mappings_is_idempotent(self):
        compiled = compile_mappings(travel_mappings())
        assert compile_mappings(compiled) is compiled


class TestCompiledConjunction:
    def test_find_matches_agrees_with_homomorphism_search(self):
        database, mappings = travel_database(), travel_mappings()
        for tgd in mappings:
            plan = get_plan(tgd)
            expected = find_matches(tgd.lhs, database)
            actual = plan.lhs.find_matches(database)
            as_set = lambda matches: {
                (frozenset(assignment.items()), witness)
                for assignment, witness in matches
            }
            assert as_set(actual) == as_set(expected)

    def test_exists_match_agrees_on_seeded_searches(self):
        database, mappings = travel_database(), travel_mappings()
        for tgd in mappings:
            plan = get_plan(tgd)
            for assignment, _ in find_matches(tgd.lhs, database):
                exported = {
                    variable: value
                    for variable, value in assignment.items()
                    if variable in tgd.rhs_variables()
                }
                assert plan.rhs.exists_match(database, exported) == bool(
                    find_matches(tgd.rhs, database, exported, limit=1)
                )


def _full_affected(query, write, view):
    """The historical delta test: evaluate fully on both sides."""
    if not query.might_be_affected_by(write):
        return False
    return query.evaluate(view) != query.evaluate(view_without_write(view, write))


class TestSeededDeltaTest:
    """The seeded ``ViolationQuery.affected_by`` must equal double evaluation."""

    def _random_value(self, rng, pool, nulls):
        if rng.random() < 0.3:
            return nulls[rng.randrange(len(nulls))]
        return Constant(pool[rng.randrange(len(pool))])

    def test_differential_against_full_evaluation(self):
        mismatches = []
        checks = 0
        for seed in range(8):
            rng = random.Random(seed)
            schema = generate_schema(num_relations=5, rng=random.Random(rng.random()))
            pool = generate_constant_pool(size=6, rng=random.Random(rng.random()))
            mappings = generate_mappings(
                schema, 6, rng=random.Random(rng.random()), constant_pool=pool
            )
            database = MemoryDatabase(schema)
            nulls = [LabeledNull("x{}".format(index)) for index in range(4)]
            relations = schema.relation_names()
            rows = []
            for _ in range(rng.randrange(5, 25)):
                relation = relations[rng.randrange(len(relations))]
                row = Tuple(
                    relation,
                    tuple(
                        self._random_value(rng, pool, nulls)
                        for _ in range(schema.arity_of(relation))
                    ),
                )
                database.insert(row)
                rows.append(row)
            for _ in range(25):
                relation = relations[rng.randrange(len(relations))]
                fresh = Tuple(
                    relation,
                    tuple(
                        self._random_value(rng, pool, nulls)
                        for _ in range(schema.arity_of(relation))
                    ),
                )
                roll = rng.random()
                if roll < 0.5:
                    write = insert(fresh)
                    database.insert(fresh)
                elif rows and roll < 0.8:
                    victim = rows[rng.randrange(len(rows))]
                    write = delete(victim)
                    database.delete(victim)
                else:
                    candidates = [row for row in rows if row.null_set() and database.contains(row)]
                    if not candidates:
                        continue
                    old = candidates[rng.randrange(len(candidates))]
                    null = sorted(old.null_set(), key=lambda n: n.name)[0]
                    new = old.substitute({null: Constant(pool[0])})
                    if new == old:
                        continue
                    write = modify(old, new, null, Constant(pool[0]))
                    database.delete(old)
                    database.insert(new)
                for tgd in mappings:
                    queries = [ViolationQuery(tgd)]
                    touched = write.added_row() or write.row
                    queries += violation_queries_for_write_row(tgd, touched, removed=False)
                    if write.removed_row() is not None:
                        queries += violation_queries_for_write_row(
                            tgd, write.removed_row(), removed=True
                        )
                    for query in queries:
                        checks += 1
                        if query.affected_by(write, database) != _full_affected(
                            query, write, database
                        ):
                            mismatches.append((seed, write, query))
        assert checks > 500
        assert not mismatches

    def test_seeded_delta_on_travel_fixture(self):
        database, mappings = travel_database(), travel_mappings()
        removed = Tuple("R", (Constant("XYZ"), Constant("Geneva Winery"), Constant("Great!")))
        write = delete(removed)
        database.delete(removed)
        for tgd in mappings:
            query = ViolationQuery(tgd)
            assert query.affected_by(write, database) == _full_affected(
                query, write, database
            )
