"""Exchange rules: mapping routing, firing and retraction computation."""

from __future__ import annotations

import pytest

from repro.core.schema import DatabaseSchema
from repro.core.terms import NullFactory
from repro.core.tgd import parse_tgd, parse_tgds
from repro.core.tuples import make_tuple
from repro.core.writes import delete, insert
from repro.federation.envelopes import ExchangeFiring, ExchangeRetraction
from repro.federation.exchange import (
    ExchangeRules,
    FederationError,
    envelopes_for_commit,
)
from repro.federation.operations import (
    RemoteFiringOperation,
    RemoteRetractionOperation,
)
from repro.service.tickets import RemoteOrigin
from repro.storage.versioned import VersionedDatabase


@pytest.fixture
def schema():
    return DatabaseSchema.from_dict(
        {"A1": ["x"], "A2": ["x", "y"], "B1": ["x"], "B2": ["x", "y"]}
    )


OWNERSHIP = {"A1": "a", "A2": "a", "B1": "b", "B2": "b"}


def test_rules_partition_local_and_cross(schema):
    mappings = parse_tgds(
        ["A1(x) -> exists y . A2(x, y)", "A2(x, y) -> B1(x)", "B1(x) -> exists y . B2(x, y)"]
    )
    rules = ExchangeRules(mappings, OWNERSHIP)
    assert [tgd.name for tgd in rules.local_mappings("a")] == ["sigma1"]
    assert [tgd.name for tgd in rules.local_mappings("b")] == ["sigma3"]
    assert len(rules.cross) == 1
    cross = rules.cross[0]
    assert (cross.source, cross.target) == ("a", "b")
    assert list(rules.outgoing("a", "A2")) == [cross]
    assert list(rules.incoming("b", "B1")) == [cross]
    assert {tgd.name for tgd in rules.union()} == {"sigma1", "sigma2", "sigma3"}


def test_rules_reject_unowned_relation(schema):
    with pytest.raises(FederationError, match="no peer owns"):
        ExchangeRules([parse_tgd("A1(x) -> B1(x)")], {"A1": "a"})


def test_rules_reject_straddling_side(schema):
    with pytest.raises(FederationError, match="single peer"):
        ExchangeRules([parse_tgd("A1(x), B1(x) -> A2(x, x)")], OWNERSHIP)


def _committed_store(schema):
    store = VersionedDatabase(schema)
    return store


def test_firing_envelopes_for_inserted_lhs_match(schema):
    rules = ExchangeRules([parse_tgd("A2(x, y) -> exists z . B2(x, z)", name="m")], OWNERSHIP)
    store = _committed_store(schema)
    logged = store.apply_write(insert(make_tuple("A2", "v", "w")), priority=1)
    origin = RemoteOrigin("a", 7)
    payloads = envelopes_for_commit(
        rules, "a", [logged], store.view_for(1), NullFactory(prefix="af"), origin
    )
    assert len(payloads) == 1
    destination, payload = payloads[0]
    assert destination == "b"
    assert isinstance(payload, ExchangeFiring)
    assert payload.origin == origin
    (head,) = payload.head_rows
    assert head.relation == "B2"
    assert str(head[0]) == "v"
    assert head[1].is_null  # the existential became a source-fresh null
    # Duplicate LHS matches within one commit are deduplicated by assignment.
    logged2 = store.apply_write(insert(make_tuple("A2", "v", "u")), priority=1)
    payloads = envelopes_for_commit(
        rules, "a", [logged, logged2], store.view_for(1), NullFactory(prefix="af"), origin
    )
    assert len(payloads) == 1  # same exported assignment {x: v}


def test_retraction_envelope_only_when_last_rhs_match_lost(schema):
    rules = ExchangeRules([parse_tgd("A1(x) -> B1(x)", name="m")], OWNERSHIP)
    store = _committed_store(schema)
    store.apply_write(insert(make_tuple("B1", "v")), priority=0)
    removed = store.apply_write(delete(make_tuple("B1", "v")), priority=1)
    payloads = envelopes_for_commit(
        rules, "b", [removed], store.view_for(1), NullFactory(prefix="bf"), RemoteOrigin("b", 1)
    )
    assert len(payloads) == 1
    destination, payload = payloads[0]
    assert destination == "a"
    assert isinstance(payload, ExchangeRetraction)
    assert payload.assignment() and str(list(payload.assignment().values())[0]) == "v"


def test_no_retraction_when_another_match_survives(schema):
    # Two B2 tuples witness the same exported assignment; deleting one keeps
    # the mapping satisfied, so no retraction must be emitted.
    rules = ExchangeRules([parse_tgd("A1(x) -> exists z . B2(x, z)", name="m")], OWNERSHIP)
    store = _committed_store(schema)
    store.apply_write(insert(make_tuple("B2", "v", "w1")), priority=0)
    store.apply_write(insert(make_tuple("B2", "v", "w2")), priority=0)
    removed = store.apply_write(delete(make_tuple("B2", "v", "w1")), priority=1)
    payloads = envelopes_for_commit(
        rules, "b", [removed], store.view_for(1), NullFactory(prefix="bf"), RemoteOrigin("b", 1)
    )
    assert payloads == []


def test_remote_firing_operation_absorbs_when_satisfied(schema):
    from repro.storage.memory import MemoryDatabase

    tgd = parse_tgd("A1(x) -> exists z . B2(x, z)", name="m")
    from repro.core.terms import Variable

    head = make_tuple("B2", "v", NullFactory(prefix="n").fresh())
    operation = RemoteFiringOperation(tgd, {Variable("x"): head[0]}, [head])
    view = MemoryDatabase(schema)
    # Unsatisfied: the head row is inserted.
    writes = operation.initial_writes(view)
    assert [write.row for write in writes] == [head]
    # Satisfied by any other RHS match: absorbed, no writes.
    view.insert(make_tuple("B2", "v", "existing"))
    assert operation.initial_writes(view) == []


def test_remote_retraction_deletes_first_witness_per_match(schema):
    from repro.core.terms import Variable
    from repro.storage.memory import MemoryDatabase

    tgd = parse_tgd("A2(x, y) -> B1(x)", name="m")
    view = MemoryDatabase(schema)
    view.insert(make_tuple("A2", "v", "w1"))
    view.insert(make_tuple("A2", "v", "w2"))
    operation = RemoteRetractionOperation(tgd, {Variable("x"): make_tuple("B1", "v")[0]})
    writes = operation.initial_writes(view)
    # Each violating LHS match loses its first witness tuple; both matches
    # here are single-atom, so both rows go.
    assert sorted(str(write.row) for write in writes) == ["A2(v, w1)", "A2(v, w2)"]
    # Nothing to do when no LHS match exists.
    empty = RemoteRetractionOperation(tgd, {Variable("x"): make_tuple("B1", "zzz")[0]})
    assert empty.initial_writes(view) == []
