"""Transport semantics: FIFO, delay, reorder, partition/heal."""

from __future__ import annotations

import pytest

from repro.federation.transport import Transport


def _payloads(envelopes):
    return [envelope.payload for envelope in envelopes]


def test_fifo_delivery_next_pump():
    transport = Transport()
    transport.send("a", "b", 1)
    transport.send("a", "b", 2)
    transport.send("b", "a", 3)
    delivered = transport.pump()
    assert sorted(_payloads(delivered)) == [1, 2, 3]
    ab = [e.payload for e in delivered if e.destination == "b"]
    assert ab == [1, 2]  # per-link FIFO preserved
    assert transport.in_flight == 0
    assert transport.pump() == []


def test_delay_holds_messages():
    transport = Transport(delay=2)
    transport.send("a", "b", "x")
    assert _payloads(transport.pump()) == []
    assert _payloads(transport.pump()) == []
    assert _payloads(transport.pump()) == ["x"]


def test_per_link_delay_override():
    transport = Transport(delay=0)
    transport.set_delay("a", "b", 3)
    transport.send("a", "b", "slow")
    transport.send("a", "c", "fast")
    first = transport.pump()
    assert _payloads(first) == ["fast"]
    transport.pump()
    transport.pump()
    assert _payloads(transport.pump()) == ["slow"]


def test_fifo_blocks_behind_undue_head_without_reorder():
    transport = Transport()
    transport.set_delay("a", "b", 2)
    transport.send("a", "b", "first")  # due at tick 3
    transport.pump()  # tick 1
    transport.set_delay("a", "b", 0)
    transport.send("a", "b", "second")  # due at tick 2, behind "first"
    assert _payloads(transport.pump()) == []  # second must not overtake
    assert _payloads(transport.pump()) == ["first", "second"]


def test_reorder_allows_overtaking():
    transport = Transport(reorder_seed=0)
    transport.set_delay("a", "b", 2)
    transport.send("a", "b", "slow")
    transport.pump()
    transport.set_delay("a", "b", 0)
    transport.send("a", "b", "fast")
    assert _payloads(transport.pump()) == ["fast"]  # overtakes the undue head
    assert _payloads(transport.pump()) == ["slow"]


def test_reorder_shuffles_batch_deterministically():
    def run(seed):
        transport = Transport(reorder_seed=seed)
        for index in range(10):
            transport.send("a", "b", index)
        return _payloads(transport.pump())

    assert run(3) == run(3)  # seeded: reproducible
    assert sorted(run(3)) == list(range(10))
    assert any(run(seed) != list(range(10)) for seed in range(5))


def test_partition_holds_and_heal_releases():
    transport = Transport()
    transport.send("a", "b", "held")
    transport.partition("a", "b")
    assert transport.is_partitioned("b", "a")
    assert _payloads(transport.pump()) == []
    assert _payloads(transport.pump()) == []
    assert transport.in_flight == 1  # nothing lost
    transport.heal("a", "b")
    assert _payloads(transport.pump()) == ["held"]
    assert transport.in_flight == 0


def test_partition_is_bidirectional_and_pairwise():
    transport = Transport()
    transport.partition("a", "b")
    transport.send("b", "a", "ba")
    transport.send("a", "c", "ac")
    assert _payloads(transport.pump()) == ["ac"]
    transport.heal("a", "b")
    assert _payloads(transport.pump()) == ["ba"]


def test_self_send_rejected():
    transport = Transport()
    with pytest.raises(ValueError):
        transport.send("a", "a", "loop")


def test_metrics_counters():
    transport = Transport()
    transport.send("a", "b", 1)
    transport.pump()
    transport.send("a", "b", 2)
    metrics = transport.metrics()
    assert metrics["transport_sent"] == 2
    assert metrics["transport_delivered"] == 1
    assert metrics["transport_in_flight"] == 1
