"""Coalesced federation envelopes: unit rewrites and delivery differentials.

``coalesce_envelopes`` rewrites one commit batch's staged payload sequence —
dedup absorbed firings, cancel firing→retraction pairs, merge commit notices
— and the network flushes the result as per-destination transport bundles.
Neither rewrite may change what a destination peer observes, so alongside the
unit tests for each rule there is a differential: the same generated
multi-peer workload delivered coalesced-and-bundled versus one-envelope-at-a-
time must converge to equivalent global states (both equal to the
single-repository reference chase).
"""

from __future__ import annotations

import pytest

from repro.core.atoms import Atom
from repro.core.oracle import AlwaysExpandOracle
from repro.core.terms import Constant, Variable
from repro.core.tgd import Tgd
from repro.core.tuples import make_tuple
from repro.federation import (
    Bundle,
    CommitNotice,
    ExchangeFiring,
    ExchangeRetraction,
    FederatedNetwork,
    Transport,
    check_convergence,
    coalesce_envelopes,
    databases_equivalent,
    reference_chase,
)
from repro.federation.envelopes import QuestionCancelled, freeze_assignment
from repro.service.tickets import RemoteOrigin, TicketStatus
from repro.workload.federated_loop import (
    FederatedClientSpec,
    FederatedClosedLoopDriver,
    expanding_answer,
)
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)

X = Variable("x")
TGD = Tgd([Atom("R", [X])], [Atom("S", [X])], name="sigma")
ORIGIN = RemoteOrigin("p0", 1)


def _firing(value: str, origin: RemoteOrigin = ORIGIN) -> ExchangeFiring:
    return ExchangeFiring(
        tgd=TGD,
        assignment_items=freeze_assignment({X: Constant(value)}),
        head_rows=(make_tuple("S", value),),
        origin=origin,
    )


def _retraction(value: str) -> ExchangeRetraction:
    return ExchangeRetraction(
        tgd=TGD,
        assignment_items=freeze_assignment({X: Constant(value)}),
        removed_row=make_tuple("S", value),
        origin=ORIGIN,
    )


class TestCoalesceRules:
    def test_duplicate_firings_collapse_to_first(self):
        first, second = _firing("a"), _firing("a")
        staged = [("p1", first), ("p1", second)]
        assert coalesce_envelopes(staged) == [("p1", first)]

    def test_same_key_different_destination_is_kept(self):
        staged = [("p1", _firing("a")), ("p2", _firing("a"))]
        assert coalesce_envelopes(staged) == staged

    def test_firing_then_retraction_cancels_both(self):
        staged = [("p1", _firing("a")), ("p1", _retraction("a"))]
        assert coalesce_envelopes(staged) == []

    def test_retraction_then_firing_keeps_both(self):
        # The retraction refers to an *earlier* firing (outside the batch);
        # dropping the pair would lose the re-established match.
        staged = [("p1", _retraction("a")), ("p1", _firing("a"))]
        assert coalesce_envelopes(staged) == staged

    def test_firing_after_cancelled_pair_is_re_emitted(self):
        fresh = _firing("a")
        staged = [("p1", _firing("a")), ("p1", _retraction("a")), ("p1", fresh)]
        assert coalesce_envelopes(staged) == [("p1", fresh)]

    def test_duplicate_retractions_collapse(self):
        first = _retraction("a")
        staged = [("p1", first), ("p1", _retraction("a"))]
        assert coalesce_envelopes(staged) == [("p1", first)]

    def test_commit_notices_merge_to_last(self):
        early = CommitNotice(origin=ORIGIN, status=TicketStatus.COMMITTED)
        late = CommitNotice(origin=ORIGIN, status=TicketStatus.COMMITTED)
        other = CommitNotice(origin=RemoteOrigin("p0", 2), status=TicketStatus.FAILED)
        staged = [("p0", early), ("p0", other), ("p0", late)]
        assert coalesce_envelopes(staged) == [("p0", other), ("p0", late)]

    def test_question_payloads_pass_through_in_order(self):
        cancelled = QuestionCancelled(
            executing_peer="p1", decision_id=7, origin=ORIGIN
        )
        staged = [("p0", cancelled), ("p1", _firing("a")), ("p0", cancelled)]
        assert coalesce_envelopes(staged) == staged

    def test_relative_order_of_kept_payloads_is_preserved(self):
        a, b, c = _firing("a"), _firing("b"), _firing("c")
        staged = [("p1", a), ("p1", _firing("a")), ("p1", b), ("p1", c)]
        assert coalesce_envelopes(staged) == [("p1", a), ("p1", b), ("p1", c)]


class TestBundleTransport:
    def test_empty_flush_sends_nothing(self):
        transport = Transport()
        assert transport.send_bundle("a", "b", []) is None
        assert transport.sent == 0

    def test_single_payload_is_sent_bare(self):
        transport = Transport(wire=True)
        envelope = transport.send_bundle("a", "b", ["payload"])
        assert envelope is not None and envelope.payload_kind == "raw"
        assert transport.bundles_sent == 0
        assert transport.payloads_sent == 1
        [delivered] = transport.pump()
        assert delivered.payload == "payload"

    def test_many_payloads_share_one_envelope(self):
        transport = Transport(wire=True)
        envelope = transport.send_bundle("a", "b", ["one", "two", "three"])
        # The queued envelope carries bytes on the (default) byte transport;
        # the wire kind names the bundle without decoding it.
        assert envelope.payload_kind == "bundle"
        assert isinstance(envelope.payload, bytes)
        assert transport.sent == 1
        assert transport.bundles_sent == 1
        assert transport.payloads_sent == 3
        [delivered] = transport.pump()
        assert isinstance(delivered.payload, Bundle)
        assert delivered.payload.payloads == ("one", "two", "three")
        assert len(delivered.payload) == 3
        metrics = transport.metrics()
        assert metrics["transport_bundles_sent"] == 1
        assert metrics["transport_payloads_sent"] == 3
        assert metrics["transport_wire_bytes_sent"] > 0

    def test_object_mode_keeps_payload_instances(self):
        transport = Transport(wire=False)
        envelope = transport.send_bundle("a", "b", ["one", "two"])
        assert isinstance(envelope.payload, Bundle)
        [delivered] = transport.pump()
        assert delivered.payload is envelope.payload


def _run_network(environment, coalesce, delay=1, reorder_seed=None):
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=delay, reorder_seed=reorder_seed),
        coalesce_envelopes=coalesce,
    )
    specs = [
        FederatedClientSpec(peer=peer, name="client@{}".format(peer), operations=list(ops))
        for peer, ops in environment.operations.items()
    ]
    driver = FederatedClosedLoopDriver(
        network, specs, answer_delay=1, answer_strategy=expanding_answer
    )
    report = driver.run(max_rounds=5_000)
    assert report.all_done and report.drained
    return network


@pytest.mark.parametrize("seed,num_peers", [(0, 3), (1, 4), (5, 3)])
def test_coalesced_delivery_equals_per_envelope_delivery(seed, num_peers):
    config = FederationScenarioConfig(
        num_peers=num_peers,
        cross_mappings=num_peers + 2,
        operations_per_peer=6,
        seed=seed,
    )
    environment = generate_federation_environment(config)
    coalesced = _run_network(environment, coalesce=True)
    plain = _run_network(environment, coalesce=False)

    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    assert check_convergence(coalesced, reference).equivalent
    assert check_convergence(plain, reference).equivalent
    assert databases_equivalent(
        coalesced.global_snapshot(), plain.global_snapshot()
    )
    # Bundling may only reduce wire traffic, never add to it.
    assert coalesced.transport.sent <= plain.transport.sent
    assert plain.transport.bundles_sent == 0
    assert plain.metrics()["envelopes_coalesced"] == 0


def test_coalesced_run_under_reorder_and_delay_converges():
    config = FederationScenarioConfig(
        num_peers=4, cross_mappings=6, operations_per_peer=6, seed=3
    )
    environment = generate_federation_environment(config)
    network = _run_network(environment, coalesce=True, delay=2, reorder_seed=3)
    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    assert check_convergence(network, reference).equivalent
