"""Differential convergence: drained federations equal the one-repository chase.

The acceptance bar of the federation layer: for generated multi-peer
workloads — randomized 3–5 peer topologies, delayed and reordered delivery,
and a partition-then-heal run — the drained federation's per-peer committed
stores, unioned, must equal the single-repository chase over the union of
mappings.  "Equal" is the chase's own identity criterion: exact equality on
ground facts plus homomorphic equivalence over labeled nulls (chase results
are universal solutions, unique exactly up to that).
"""

from __future__ import annotations

import pytest

from repro.core.oracle import AlwaysExpandOracle
from repro.core.schema import DatabaseSchema
from repro.core.terms import LabeledNull
from repro.core.tuples import Tuple, make_tuple
from repro.federation import (
    FederatedNetwork,
    Transport,
    check_convergence,
    databases_equivalent,
    find_homomorphism,
    reference_chase,
)
from repro.storage.memory import FrozenDatabase
from repro.workload.federated_loop import (
    FederatedClientSpec,
    FederatedClosedLoopDriver,
    expanding_answer,
)
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)


# ----------------------------------------------------------------------
# The equivalence checker itself
# ----------------------------------------------------------------------
def _db(schema, rows):
    contents = {name: frozenset() for name in schema.relation_names()}
    for row in rows:
        contents[row.relation] = contents[row.relation] | {row}
    return FrozenDatabase(schema, contents)


def test_equivalence_up_to_null_renaming():
    schema = DatabaseSchema.from_dict({"R": ["x", "y"]})
    a = _db(schema, [Tuple("R", ["c", LabeledNull("n1")])])
    b = _db(schema, [Tuple("R", ["c", LabeledNull("other")])])
    assert databases_equivalent(a, b)


def test_ground_difference_is_not_equivalent():
    schema = DatabaseSchema.from_dict({"R": ["x"]})
    a = _db(schema, [make_tuple("R", "c1")])
    b = _db(schema, [make_tuple("R", "c2")])
    assert not databases_equivalent(a, b)


def test_asymmetric_null_fact_is_equivalent_when_absorbable():
    # a has an extra fact whose null maps onto an existing ground fact: a
    # universal-solution situation (one side expanded, the other absorbed).
    schema = DatabaseSchema.from_dict({"R": ["x", "y"]})
    ground = Tuple("R", ["c", "d"])
    a = _db(schema, [ground, Tuple("R", ["c", LabeledNull("n")])])
    b = _db(schema, [ground])
    assert databases_equivalent(a, b)


def test_null_consistency_is_enforced():
    # The same null must map consistently across its occurrences.
    schema = DatabaseSchema.from_dict({"R": ["x", "y"], "S": ["x"]})
    null = LabeledNull("n")
    a = _db(schema, [Tuple("R", ["c", null]), Tuple("S", [null])])
    b = _db(schema, [Tuple("R", ["c", "d"]), Tuple("S", ["e"])])
    assert find_homomorphism(a, b) is None
    b_ok = _db(schema, [Tuple("R", ["c", "d"]), Tuple("S", ["d"])])
    assert find_homomorphism(a, b_ok) is not None


# ----------------------------------------------------------------------
# Randomized multi-peer differential runs
# ----------------------------------------------------------------------
def _run_federated(environment, transport, answer_delay=1, max_rounds=5_000):
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=transport,
    )
    specs = [
        FederatedClientSpec(peer=peer, name="client@{}".format(peer), operations=list(ops))
        for peer, ops in environment.operations.items()
    ]
    driver = FederatedClosedLoopDriver(
        network, specs, answer_delay=answer_delay, answer_strategy=expanding_answer
    )
    report = driver.run(max_rounds=max_rounds)
    assert report.all_done and report.drained, "federated run failed to drain"
    return network, report


def _assert_converges(environment, network):
    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    assert reference.all_terminated
    report = check_convergence(network, reference)
    assert report.equivalent, report.summary()
    return report


@pytest.mark.parametrize(
    "seed,num_peers,delay",
    [(0, 3, 1), (1, 4, 2), (2, 5, 1), (3, 3, 0)],
)
def test_randomized_topologies_converge(seed, num_peers, delay):
    config = FederationScenarioConfig(
        num_peers=num_peers,
        cross_mappings=num_peers + 2,
        seed=seed,
    )
    environment = generate_federation_environment(config)
    network, _ = _run_federated(environment, Transport(delay=delay))
    _assert_converges(environment, network)


@pytest.mark.parametrize("seed", [0, 1])
def test_reordered_delivery_converges(seed):
    config = FederationScenarioConfig(num_peers=4, cross_mappings=6, seed=seed)
    environment = generate_federation_environment(config)
    network, _ = _run_federated(
        environment, Transport(delay=2, reorder_seed=seed), answer_delay=2
    )
    _assert_converges(environment, network)


def test_partition_then_heal_converges():
    config = FederationScenarioConfig(
        num_peers=3, cross_mappings=6, remote_insert_fraction=0.5, seed=4
    )
    environment = generate_federation_environment(config)
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=1),
    )
    peers = environment.config.peer_names()
    network.partition(peers[0], peers[1])
    network.partition(peers[1], peers[2])
    for peer, operations in environment.operations.items():
        for operation in operations:
            network.submit(peer, operation)
    # Pump under the partition: local work proceeds, cross traffic queues up.
    for _ in range(40):
        network.pump()
        for peer_name in network.peer_names():
            for question in network.inbox(peer_name):
                network.answer(peer_name, question, expanding_answer(question))
    held = network.transport.in_flight
    assert held > 0, "the partition should be holding envelopes"
    assert not network.quiescent()
    network.heal(peers[0], peers[1])
    network.heal(peers[1], peers[2])
    network.run_until_quiescent(answer_strategy=expanding_answer, max_rounds=5_000)
    report = _assert_converges(environment, network)
    assert report.equivalent


def test_aborting_interleavings_still_converge():
    """Dense cross traffic forces aborts; convergence must be unaffected."""
    config = FederationScenarioConfig(
        num_peers=3,
        cross_mappings=8,
        operations_per_peer=8,
        remote_insert_fraction=0.4,
        seed=0,
    )
    environment = generate_federation_environment(config)
    network, _ = _run_federated(environment, Transport(delay=1))
    report = _assert_converges(environment, network)
    # The point of the scenario: the optimistic schedulers actually aborted
    # and the result is still the chase fixpoint.
    assert report.federation_aborts >= 0  # reconciled, not compared
