"""Socket-federation differential: real peer processes ≡ in-process ≡ chase.

The acceptance bar of the multi-process transport: a federation of peer
*processes* exchanging framed codec envelopes over Unix-domain sockets must
drain to the same global state — hom-equivalence up to null renaming, ground
parts exactly equal — as (a) the in-process :class:`FederatedNetwork` over
the simulated transport and (b) the single-repository chase over the union
of mappings.  Randomized 3–5 peer scenarios, simulated link delay with
seeded reordering, partition-then-heal, and a kill-and-restart of a peer
*process* from a checkpoint file all go through the same comparison.

Every test tears its federation down through :func:`running`, which closes
the coordinator and then *asserts* that no child process and no socket file
survived — a failing test must not leak zombies (the harness teardown
guarantee the CI smoke job relies on).
"""

from __future__ import annotations

import contextlib

import pytest

from repro.core.oracle import AlwaysExpandOracle
from repro.core.schema import DatabaseSchema
from repro.core.tgd import parse_tgds
from repro.core.tuples import make_tuple
from repro.core.update import InsertOperation
from repro.federation import (
    FederatedNetwork,
    ProcessFederation,
    Transport,
    databases_equivalent,
    reference_chase,
)
from repro.service.tickets import TicketStatus
from repro.storage.memory import FrozenDatabase
from repro.workload.federated_loop import (
    FederatedClientSpec,
    FederatedClosedLoopDriver,
    expanding_answer,
)
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)

DRAIN_TIMEOUT = 120.0


@contextlib.contextmanager
def running(federation):
    """Close the federation on the way out and assert every child is reaped."""
    try:
        yield federation
    finally:
        federation.close()
        federation.assert_reaped()


def chain_pieces():
    schema = DatabaseSchema.from_dict(
        {"A1": ["x"], "A2": ["x", "y"], "B1": ["x"], "B2": ["x"]}
    )
    mappings = parse_tgds(
        [
            "A1(x) -> exists y . A2(x, y)",
            "A2(x, y) -> B1(x)",
            "B1(x) -> B2(x)",
        ]
    )
    initial = FrozenDatabase(
        schema, {name: frozenset() for name in schema.relation_names()}
    )
    return schema, mappings, initial


def _reference(environment):
    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    assert reference.all_terminated
    return reference


def _run_inprocess(environment, delay=1):
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=delay),
    )
    specs = [
        FederatedClientSpec(
            peer=peer, name="client@{}".format(peer), operations=list(ops)
        )
        for peer, ops in environment.operations.items()
    ]
    driver = FederatedClosedLoopDriver(
        network, specs, answer_delay=1, answer_strategy=expanding_answer
    )
    report = driver.run(max_rounds=5_000)
    assert report.all_done and report.drained
    return network


def _submit_all(federation, environment):
    tickets = []
    for peer in sorted(environment.operations):
        for operation in environment.operations[peer]:
            tickets.append(federation.submit(peer, operation))
    return tickets


# ----------------------------------------------------------------------
# Mechanics on the hand-built chain
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["unix", "tcp"])
def test_forward_cascade_across_processes(tmp_path, transport):
    schema, mappings, initial = chain_pieces()
    operations = [InsertOperation(make_tuple("A1", "v1"))]
    with running(ProcessFederation(
        schema,
        initial,
        mappings,
        ownership={"a": ["A1", "A2"], "b": ["B1", "B2"]},
        transport=transport,
        workdir=str(tmp_path / transport),
    )) as federation:
        ticket = federation.submit("a", operations[0])
        federation.drain(timeout=DRAIN_TIMEOUT)
        assert ticket.status is TicketStatus.COMMITTED
        snapshot = federation.global_snapshot()
    assert snapshot.count("A1") == 1
    assert snapshot.count("A2") == 1
    assert snapshot.count("B1") == 1  # crossed a real socket
    assert snapshot.count("B2") == 1  # cascaded through b's local chase
    reference = reference_chase(schema, initial, mappings, operations)
    assert databases_equivalent(snapshot, reference.final)


def test_staging_window_batches_the_wire_and_converges(tmp_path):
    """Adaptive send staging parks payloads without changing drained state.

    With a 4-round/25 ms staging window the peers hold outgoing envelopes
    across scheduler pump rounds before flushing; the drain (watermark
    protocol — the staged set must count against quiescence) still settles
    to the reference state, and the wire metrics prove the window actually
    staged and flushed batches rather than degenerating to passthrough.
    """
    schema, mappings, initial = chain_pieces()
    operations = [
        InsertOperation(make_tuple("A1", "v{}".format(index)))
        for index in range(4)
    ]
    with running(ProcessFederation(
        schema,
        initial,
        mappings,
        ownership={"a": ["A1", "A2"], "b": ["B1", "B2"]},
        stage_rounds=4,
        stage_delay=0.025,
        workdir=str(tmp_path),
    )) as federation:
        tickets = [federation.submit("a", operation) for operation in operations]
        federation.drain(timeout=DRAIN_TIMEOUT)
        assert all(ticket.status is TicketStatus.COMMITTED for ticket in tickets)
        metrics = federation.metrics()
        staged = sum(
            (view.get("metrics") or {}).get("wire_payloads_staged", 0)
            for view in metrics.values()
        )
        flushes = sum(
            (view.get("metrics") or {}).get("wire_staged_flushes", 0)
            for view in metrics.values()
        )
        assert staged >= 1, "the window never staged a payload"
        assert flushes >= 1, "the window never flushed a batch"
        snapshot = federation.global_snapshot()
    reference = reference_chase(schema, initial, mappings, operations)
    assert databases_equivalent(snapshot, reference.final)


def test_user_update_routed_to_owner_process(tmp_path):
    schema, mappings, initial = chain_pieces()
    with running(ProcessFederation(
        schema,
        initial,
        mappings,
        ownership={"a": ["A1", "A2"], "b": ["B1", "B2"]},
        workdir=str(tmp_path),
    )) as federation:
        ticket = federation.submit("a", InsertOperation(make_tuple("B1", "w")))
        assert ticket.target == "b"
        federation.drain(timeout=DRAIN_TIMEOUT)
        assert ticket.status is TicketStatus.COMMITTED
        snapshot = federation.global_snapshot()
        assert snapshot.count("B1") == 1
        # Status replies carry per-peer commit counts: the update executed
        # at the owner's process, not where it was submitted.
        metrics = federation.metrics()
        assert metrics["b"]["committed"] >= 1


# ----------------------------------------------------------------------
# Randomized differential scenarios
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed,num_peers", [(0, 3), (1, 4), (2, 5)])
def test_randomized_sockets_match_inprocess_and_reference(
    tmp_path, seed, num_peers
):
    config = FederationScenarioConfig(
        num_peers=num_peers,
        cross_mappings=num_peers + 2,
        seed=seed,
    )
    environment = generate_federation_environment(config)
    with running(ProcessFederation(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        workdir=str(tmp_path),
    )) as federation:
        tickets = _submit_all(federation, environment)
        federation.drain(
            answer_strategy=expanding_answer, timeout=DRAIN_TIMEOUT
        )
        assert all(ticket.is_done for ticket in tickets)
        socket_snapshot = federation.global_snapshot()
    reference = _reference(environment)
    assert databases_equivalent(socket_snapshot, reference.final)
    # Same scenario, in-process federation: the differential oracle.
    inprocess = _run_inprocess(
        generate_federation_environment(config)
    ).global_snapshot()
    assert databases_equivalent(socket_snapshot, inprocess)


# Both drain protocols on purpose: delayed, reordered links are exactly
# where a premature watermark candidate would tempt an unsound detector.
@pytest.mark.parametrize("drain_mode", ["watermark", "poll"])
def test_delay_and_reorder_sockets_converge(tmp_path, drain_mode):
    config = FederationScenarioConfig(num_peers=4, cross_mappings=6, seed=1)
    environment = generate_federation_environment(config)
    with running(ProcessFederation(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        link_delay=0.01,
        reorder_seed=11,
        workdir=str(tmp_path),
    )) as federation:
        tickets = _submit_all(federation, environment)
        federation.drain(
            answer_strategy=expanding_answer,
            timeout=DRAIN_TIMEOUT,
            mode=drain_mode,
        )
        assert all(ticket.is_done for ticket in tickets)
        assert federation.last_drain["mode"] == drain_mode
        snapshot = federation.global_snapshot()
    assert databases_equivalent(snapshot, _reference(environment).final)


def test_drain_modes_agree_on_randomized_topology(tmp_path):
    """Watermark and poll drains settle the same state with the same keys.

    The same randomized scenario runs once per protocol; both must match
    the single-repository reference chase, and the post-drain ``metrics()``
    documents must carry bit-identical key sets (top-level peers, per-peer
    status keys, and per-peer metric-registry keys) so dashboards cannot
    tell the protocols apart.
    """
    config = FederationScenarioConfig(num_peers=3, cross_mappings=5, seed=7)
    snapshots = {}
    metric_shapes = {}
    for drain_mode in ("watermark", "poll"):
        environment = generate_federation_environment(config)
        workdir = tmp_path / drain_mode
        workdir.mkdir()
        with running(ProcessFederation(
            environment.schema,
            environment.initial,
            list(environment.mappings),
            environment.ownership,
            workdir=str(workdir),
        )) as federation:
            tickets = _submit_all(federation, environment)
            federation.drain(
                answer_strategy=expanding_answer,
                timeout=DRAIN_TIMEOUT,
                mode=drain_mode,
            )
            assert all(ticket.is_done for ticket in tickets)
            snapshots[drain_mode] = federation.global_snapshot()
            metrics = federation.metrics()
            metric_shapes[drain_mode] = {
                peer: (
                    frozenset(view.keys()),
                    frozenset((view.get("metrics") or {}).keys()),
                )
                for peer, view in metrics.items()
            }
        assert databases_equivalent(
            snapshots[drain_mode], _reference(environment).final
        )
    assert databases_equivalent(snapshots["watermark"], snapshots["poll"])
    assert metric_shapes["watermark"] == metric_shapes["poll"]


@pytest.mark.parametrize("drain_mode", ["watermark", "poll"])
def test_partition_then_heal_sockets_converge(tmp_path, drain_mode):
    config = FederationScenarioConfig(
        num_peers=3, cross_mappings=6, remote_insert_fraction=0.5, seed=4
    )
    environment = generate_federation_environment(config)
    with running(ProcessFederation(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        workdir=str(tmp_path),
    )) as federation:
        peers = environment.config.peer_names()
        federation.partition(peers[0], peers[1])
        federation.partition(peers[1], peers[2])
        tickets = _submit_all(federation, environment)
        # A routed submission whose path crosses the cut cannot finish: its
        # RemoteUpdate frame is held on the origin's outgoing link.
        cut = {(peers[0], peers[1]), (peers[1], peers[0]),
               (peers[1], peers[2]), (peers[2], peers[1])}
        blocked = [
            ticket for ticket in tickets
            if (ticket.peer, ticket.target) in cut
        ]
        assert blocked, "scenario routed nothing across the partition"
        deadline_questions = 40
        for _ in range(deadline_questions):
            federation.poll(0.05)
            for peer_name in peers:
                for question in federation.inbox(peer_name):
                    federation.answer(
                        peer_name, question, expanding_answer(question)
                    )
        assert any(not ticket.is_done for ticket in blocked), (
            "the partition should still be holding routed updates"
        )
        federation.heal(peers[0], peers[1])
        federation.heal(peers[1], peers[2])
        federation.drain(
            answer_strategy=expanding_answer,
            timeout=DRAIN_TIMEOUT,
            mode=drain_mode,
        )
        assert all(ticket.is_done for ticket in tickets)
        snapshot = federation.global_snapshot()
    assert databases_equivalent(snapshot, _reference(environment).final)


# ----------------------------------------------------------------------
# Kill and restart of a real process
# ----------------------------------------------------------------------
# Both transports on purpose: a TCP connection to a killed peer can absorb
# one sendall without an error (the RST races the write), so survivors must
# reset their outgoing links before the release — UDS alone never sees it.
# Watermark mode on both transports: a reborn peer resets its activity
# sequence, so kill/restart is where a stale coordinator watermark view
# could fake quiescence.  Poll mode rides along once as the control.
@pytest.mark.parametrize("transport,drain_mode", [
    ("unix", "watermark"),
    ("tcp", "watermark"),
    ("unix", "poll"),
])
def test_kill_and_restart_peer_process_converges(tmp_path, transport, drain_mode):
    config = FederationScenarioConfig(
        num_peers=3,
        cross_mappings=6,
        operations_per_peer=6,
        remote_insert_fraction=0.3,
        seed=0,
    )
    environment = generate_federation_environment(config)
    with running(ProcessFederation(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=transport,
        workdir=str(tmp_path),
    )) as federation:
        tickets = _submit_all(federation, environment)
        # Let the federation make *some* progress, then snapshot-and-kill a
        # genuinely mid-workload victim process.
        for _ in range(4):
            federation.poll(0.05)
            for peer_name in environment.config.peer_names():
                for question in federation.inbox(peer_name):
                    federation.answer(
                        peer_name, question, expanding_answer(question)
                    )
        victim = environment.config.peer_names()[1]
        old_pid = federation._handles[victim].process.pid
        path = str(tmp_path / "{}.ckpt".format(victim))
        federation.checkpoint_peer(victim, path, halt=True)
        federation.kill_peer(victim)
        assert federation._handles[victim].process.poll() is not None
        federation.restart_peer(victim, path)
        assert federation._handles[victim].process.pid != old_pid
        federation.drain(
            answer_strategy=expanding_answer,
            timeout=DRAIN_TIMEOUT,
            mode=drain_mode,
        )
        assert all(ticket.is_done for ticket in tickets)
        snapshot = federation.global_snapshot()
    assert databases_equivalent(snapshot, _reference(environment).final)


# ----------------------------------------------------------------------
# Teardown discipline
# ----------------------------------------------------------------------
def test_close_reaps_processes_mid_federation(tmp_path):
    """Closing with traffic still in flight leaves no zombies or sockets."""
    schema, mappings, initial = chain_pieces()
    federation = ProcessFederation(
        schema,
        initial,
        mappings,
        ownership={"a": ["A1", "A2"], "b": ["B1", "B2"]},
        workdir=str(tmp_path),
    )
    for index in range(10):
        federation.submit("a", InsertOperation(make_tuple("A1", "v{}".format(index))))
    # No drain: close mid-flight, exactly like a failing test's teardown.
    federation.close()
    federation.assert_reaped()
    # Idempotent: a second close (pytest teardown after an explicit close)
    # must not raise.
    federation.close()
