"""FederatedNetwork behavior on hand-built topologies.

These fixtures pin the exchange mechanics one at a time: forward cascades
(local chase → cross firing → remote local chase), backward retraction
cascades, user-update routing with commit notices, question routing with
answers, cancellations and partitions.
"""

from __future__ import annotations

import pytest

from repro.core.frontier import UnifyOperation
from repro.core.schema import DatabaseSchema
from repro.core.tgd import parse_tgds
from repro.core.tuples import make_tuple
from repro.core.update import DeleteOperation, InsertOperation
from repro.federation import (
    FederatedNetwork,
    FederationError,
    Transport,
    check_convergence,
    reference_chase,
)
from repro.service.tickets import TicketStatus


def chain_fixture(delay=1, reorder_seed=None, stage_rounds=1):
    schema = DatabaseSchema.from_dict(
        {"A1": ["x"], "A2": ["x", "y"], "B1": ["x"], "B2": ["x"]}
    )
    mappings = parse_tgds(
        [
            "A1(x) -> exists y . A2(x, y)",  # local at a
            "A2(x, y) -> B1(x)",             # cross a -> b
            "B1(x) -> B2(x)",                # local at b
        ]
    )
    from repro.storage.memory import FrozenDatabase

    initial = FrozenDatabase(
        schema, {name: frozenset() for name in schema.relation_names()}
    )
    network = FederatedNetwork(
        schema,
        initial,
        mappings,
        ownership={"a": ["A1", "A2"], "b": ["B1", "B2"]},
        transport=Transport(delay=delay, reorder_seed=reorder_seed),
        stage_rounds=stage_rounds,
    )
    return schema, mappings, initial, network


def test_forward_cascade_across_peers():
    schema, mappings, initial, network = chain_fixture()
    network.submit("a", InsertOperation(make_tuple("A1", "v1")))
    rounds = network.run_until_quiescent()
    assert rounds >= 2  # at least one transport crossing
    snapshot = network.global_snapshot()
    assert snapshot.count("A1") == 1
    assert snapshot.count("A2") == 1
    assert snapshot.count("B1") == 1  # crossed the transport
    assert snapshot.count("B2") == 1  # cascaded through b's local chase
    reference = reference_chase(
        schema, initial, mappings, [InsertOperation(make_tuple("A1", "v1"))]
    )
    assert check_convergence(network, reference).equivalent


def test_staged_flush_converges_to_the_same_state():
    """A multi-round staging window delays flushes but changes no answers.

    With ``stage_rounds=3`` a peer's outbox parks for up to two extra pump
    rounds before hitting the transport; quiescence must keep counting the
    parked envelopes (both the classic and the watermark detector), and the
    drained state must match the unstaged run and the reference chase.
    """
    schema, mappings, initial, network = chain_fixture(stage_rounds=3)
    operations = [
        InsertOperation(make_tuple("A1", "v1")),
        InsertOperation(make_tuple("A1", "v2")),
    ]
    for operation in operations:
        network.submit("a", operation)
    rounds = network.run_until_quiescent()
    assert rounds >= 3  # the window held the first firing back
    reference = reference_chase(schema, initial, mappings, operations)
    assert check_convergence(network, reference).equivalent
    metrics = network.metrics()
    assert metrics["firings_emitted"] >= 1
    # The parked-set bookkeeping is empty again after the drain.
    assert network.quiescent() and network.watermark_quiescent()


def test_backward_retraction_cascades_to_source_peer():
    schema, mappings, initial, network = chain_fixture()
    operations = [
        InsertOperation(make_tuple("A1", "v1")),
        DeleteOperation(make_tuple("B1", "v1")),
    ]
    network.submit("a", operations[0])
    network.run_until_quiescent()
    network.submit("b", operations[1])
    network.run_until_quiescent()
    snapshot = network.global_snapshot()
    # The retraction deleted A2 at a, whose local backward chase deleted A1.
    assert snapshot.count("A1") == 0
    assert snapshot.count("A2") == 0
    assert snapshot.count("B1") == 0
    assert snapshot.count("B2") == 1  # B2 has no reason to go (tgds are implications)
    reference = reference_chase(schema, initial, mappings, operations)
    assert check_convergence(network, reference).equivalent


def test_user_update_routed_to_owner_with_commit_notice():
    _, _, _, network = chain_fixture()
    ticket = network.submit("a", InsertOperation(make_tuple("B1", "w")))
    assert ticket.is_remote and ticket.target == "b"
    assert ticket.status is TicketStatus.QUEUED
    network.run_until_quiescent()
    assert ticket.status is TicketStatus.COMMITTED
    assert network.metrics()["updates_routed"] == 1
    # The update executed at b: b's store holds it, a's does not.
    assert network.peer("b").service.count("B1") == 1
    assert network.peer("a").service.count("B1") == 0


def test_commit_notice_is_delayed_by_partition():
    _, _, _, network = chain_fixture()
    network.partition("a", "b")
    ticket = network.submit("a", InsertOperation(make_tuple("B1", "w")))
    for _ in range(5):
        network.pump()
    # The RemoteUpdate envelope itself is held: nothing executed anywhere.
    assert ticket.status is TicketStatus.QUEUED
    assert network.peer("b").service.count("B1") == 0
    network.heal("a", "b")
    network.run_until_quiescent()
    assert ticket.status is TicketStatus.COMMITTED


def test_unowned_relations_stay_empty_everywhere():
    _, _, _, network = chain_fixture()
    network.submit("a", InsertOperation(make_tuple("A1", "v1")))
    network.submit("b", InsertOperation(make_tuple("B1", "w1")))
    network.run_until_quiescent()
    for peer in network.peers():
        snapshot = peer.service.snapshot()
        for relation in snapshot.relations():
            if relation not in peer.owned:
                assert snapshot.count(relation) == 0, (
                    "peer {} holds tuples of unowned relation {}".format(
                        peer.name, relation
                    )
                )


def question_fixture():
    schema = DatabaseSchema.from_dict(
        {"Seed": ["x"], "Person": ["name"], "Father": ["child", "father"]}
    )
    mappings = parse_tgds(
        [
            "Seed(x) -> Person(x)",                             # cross a -> b
            "Person(x) -> exists y . Father(x, y), Person(y)",  # cyclic local at b
        ]
    )
    from repro.storage.memory import FrozenDatabase

    initial = FrozenDatabase(
        schema, {name: frozenset() for name in schema.relation_names()}
    )
    network = FederatedNetwork(
        schema,
        initial,
        mappings,
        ownership={"a": ["Seed"], "b": ["Person", "Father"]},
        transport=Transport(delay=1),
    )
    return network


def _pump_until_question(network, peer_name, max_rounds=50):
    for _ in range(max_rounds):
        network.pump()
        questions = network.inbox(peer_name)
        if questions:
            return questions
    raise AssertionError("no question reached {}".format(peer_name))


def test_question_routes_to_originating_peer_and_answer_resumes():
    network = question_fixture()
    network.submit("a", InsertOperation(make_tuple("Seed", "alice")))
    questions = _pump_until_question(network, "a")
    question = questions[0]
    assert question.executing_peer == "b"
    assert network.inbox("b") == []  # the executor does not see it locally
    unify = [
        alternative
        for alternative in question.alternatives()
        if isinstance(alternative, UnifyOperation)
    ][0]
    network.answer("a", question, unify)
    assert network.inbox("a") == []  # removed optimistically
    network.run_until_quiescent()
    snapshot = network.global_snapshot()
    assert snapshot.count("Person") == 1
    assert snapshot.count("Father") == 1
    metrics = network.metrics()
    assert metrics["questions_routed"] == 1
    assert metrics["answers_routed"] == 1
    assert metrics["answers_dropped"] == 0


def test_local_question_stays_local():
    network = question_fixture()
    network.submit("b", InsertOperation(make_tuple("Person", "bob")))
    questions = _pump_until_question(network, "b")
    assert questions[0].executing_peer == "b"
    assert network.metrics()["questions_routed"] == 0
    unify = [
        alternative
        for alternative in questions[0].alternatives()
        if isinstance(alternative, UnifyOperation)
    ][0]
    network.answer("b", questions[0], unify)
    network.run_until_quiescent()
    assert network.global_snapshot().count("Person") == 1


def test_answering_a_closed_question_raises():
    network = question_fixture()
    network.submit("a", InsertOperation(make_tuple("Seed", "alice")))
    question = _pump_until_question(network, "a")[0]
    unify = [
        alternative
        for alternative in question.alternatives()
        if isinstance(alternative, UnifyOperation)
    ][0]
    network.answer("a", question, unify)
    with pytest.raises(FederationError, match="not open"):
        network.answer("a", question, unify)


def test_bounded_admission_defers_deliveries_instead_of_losing_them():
    from repro.core.schema import DatabaseSchema
    from repro.service import AdmissionConfig
    from repro.storage.memory import FrozenDatabase

    schema = DatabaseSchema.from_dict({"A1": ["x"], "B1": ["x"]})
    mappings = parse_tgds(["A1(x) -> B1(x)"])
    initial = FrozenDatabase(schema, {"A1": frozenset(), "B1": frozenset()})
    network = FederatedNetwork(
        schema,
        initial,
        mappings,
        ownership={"a": ["A1"], "b": ["B1"]},
        transport=Transport(),
        # A queue of depth 1 with one-at-a-time admission: a burst of routed
        # updates must overflow it.
        admission=AdmissionConfig(max_in_flight=1, batch_size=1, max_queue_depth=1),
    )
    tickets = [
        network.submit("a", InsertOperation(make_tuple("B1", "w{}".format(index))))
        for index in range(6)
    ]
    network.run_until_quiescent(max_rounds=200)
    # Every routed update eventually executed; overflow deferred, not lost.
    assert all(ticket.status is TicketStatus.COMMITTED for ticket in tickets)
    assert network.metrics()["deliveries_deferred"] > 0
    assert network.peer("b").service.count("B1") == 6


def test_invalid_topologies_rejected():
    schema = DatabaseSchema.from_dict({"A1": ["x"], "B1": ["x"]})
    from repro.storage.memory import FrozenDatabase

    initial = FrozenDatabase(schema, {"A1": frozenset(), "B1": frozenset()})
    with pytest.raises(FederationError, match="no peer owns"):
        FederatedNetwork(schema, initial, [], {"a": ["A1"]})
    with pytest.raises(FederationError, match="claimed by both"):
        FederatedNetwork(schema, initial, [], {"a": ["A1", "B1"], "b": ["B1"]})
    with pytest.raises(FederationError, match="unknown relation"):
        FederatedNetwork(schema, initial, [], {"a": ["A1", "C1"], "b": ["B1"]})
