"""Kill-and-restart differential: a restored peer rejoins and still converges.

The acceptance test of the snapshot/restore path: run a generated multi-peer
workload over the byte transport, and *mid-workload* — with envelopes in
flight and uncommitted work on the victim's scheduler — checkpoint one peer,
drop it entirely (service, store, scheduler, sessions: that is the crash) and
rebuild it from the checkpoint file.  The drained federation must still match
the single-repository chase over the union of mappings, up to null renaming
(hom-equivalence; ground parts exactly equal) — the same criterion as every
other convergence differential.
"""

from __future__ import annotations

import pytest

from repro.core.oracle import AlwaysExpandOracle
from repro.federation import (
    FederatedNetwork,
    Transport,
    check_convergence,
    reference_chase,
)
from repro.workload.federated_loop import expanding_answer
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)


def _build_network(environment, delay=1):
    return FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=delay),
    )


def _answer_open_questions(network):
    for peer_name in network.peer_names():
        for question in network.inbox(peer_name):
            network.answer(peer_name, question, expanding_answer(question))


def _assert_converges(environment, network):
    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    assert reference.all_terminated
    report = check_convergence(network, reference)
    assert report.equivalent, report.summary()
    return report


@pytest.mark.parametrize(
    "seed,victim_index,kill_round",
    [(0, 0, 2), (0, 1, 3), (1, 2, 2), (2, 1, 1), (3, 0, 3)],
)
def test_kill_and_restart_mid_workload_converges(tmp_path, seed, victim_index, kill_round):
    config = FederationScenarioConfig(
        num_peers=3,
        cross_mappings=6,
        operations_per_peer=6,
        remote_insert_fraction=0.3,
        seed=seed,
    )
    environment = generate_federation_environment(config)
    network = _build_network(environment)
    for peer, operations in environment.operations.items():
        for operation in operations:
            network.submit(peer, operation)
    # Run a few rounds so the victim is genuinely mid-workload at the kill.
    for _ in range(kill_round):
        network.pump()
        _answer_open_questions(network)
    assert not network.quiescent(), "kill must happen before the run drains"

    victim = network.peer_names()[victim_index]
    path = str(tmp_path / "{}.ckpt".format(victim))
    body = network.peer(victim).checkpoint(path)
    busy = (
        bool(body["pending"])
        or network.transport.in_flight > 0
        or any(not t.is_done for t in network.tickets())
    )
    assert busy, "the scenario should leave work outstanding at the kill point"

    old_service = network.peer(victim).service
    reborn = network.restart_peer(victim, path)
    assert reborn.service is not old_service  # the old process is gone
    assert network.peer(victim) is reborn

    network.run_until_quiescent(answer_strategy=expanding_answer, max_rounds=5_000)
    _assert_converges(environment, network)


def test_restart_preserves_committed_state_exactly(tmp_path):
    """A quiescent peer restored from checkpoint serves identical reads."""
    config = FederationScenarioConfig(num_peers=3, cross_mappings=4, seed=5)
    environment = generate_federation_environment(config)
    network = _build_network(environment)
    for peer, operations in environment.operations.items():
        for operation in operations:
            network.submit(peer, operation)
    network.run_until_quiescent(answer_strategy=expanding_answer, max_rounds=5_000)
    victim = network.peer_names()[0]
    before = network.peer(victim).owned_snapshot()
    path = str(tmp_path / "quiesced.ckpt")
    network.checkpoint_peer(victim, path)
    network.restart_peer(victim, path)
    assert network.peer(victim).owned_snapshot() == before
    assert network.quiescent()
    _assert_converges(environment, network)


def test_restart_under_partition_then_heal_converges(tmp_path):
    """Held envelopes survive the restart on the transport and deliver after."""
    config = FederationScenarioConfig(
        num_peers=3, cross_mappings=6, remote_insert_fraction=0.4, seed=7
    )
    environment = generate_federation_environment(config)
    network = _build_network(environment)
    peers = network.peer_names()
    network.partition(peers[0], peers[1])
    for peer, operations in environment.operations.items():
        for operation in operations:
            network.submit(peer, operation)
    for _ in range(6):
        network.pump()
        _answer_open_questions(network)
    held = network.transport.held_by_partition
    path = str(tmp_path / "partitioned.ckpt")
    network.peer(peers[1]).checkpoint(path)
    network.restart_peer(peers[1], path)
    assert network.transport.held_by_partition == held  # nothing lost
    network.heal(peers[0], peers[1])
    network.run_until_quiescent(answer_strategy=expanding_answer, max_rounds=5_000)
    _assert_converges(environment, network)
