"""The live telemetry plane: heartbeats, watchdog, flight-recorder chaos.

The acceptance differential of the observability PR: kill -9 a peer process
mid-workload and the coordinator must *see* it — the watchdog flips the peer
to ``dead`` within two heartbeat intervals, the victim's flight recorder has
already flushed its recent spans to disk, and ``repro-trace --flight`` folds
those postmortem spans together with the survivors' exports into a causal
chain that crosses the dead peer.  Plus the satellite pins: the status reply
carries the *full* metrics-registry collect (so a new instrument cannot
silently drop off the status path), ``metrics()`` is heartbeat-fresh without
a drain, and every drain leaves a latency-decomposition record.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time

import pytest

from repro.core.schema import DatabaseSchema
from repro.core.tgd import parse_tgds
from repro.core.tuples import make_tuple
from repro.core.update import InsertOperation
from repro.federation import ProcessFederation
from repro.obs import cli as trace_cli
from repro.obs.analysis import TraceAnalysis, merge_spans
from repro.obs.flight import flight_paths, load_flight_spans
from repro.obs.timeline import DEAD, LIVE, STALLED
from repro.obs.trace import load_spans
from repro.storage.memory import FrozenDatabase

DRAIN_TIMEOUT = 120.0
#: Deadline for "within two heartbeat intervals" assertions — generous in
#: wall time (CI boxes stall), strict in heartbeat counts via the watchdog.
WAIT_TIMEOUT = 30.0


@contextlib.contextmanager
def running(federation):
    try:
        yield federation
    finally:
        federation.close()
        federation.assert_reaped()


def chain_pieces():
    schema = DatabaseSchema.from_dict(
        {"A1": ["x"], "A2": ["x", "y"], "B1": ["x"], "B2": ["x"]}
    )
    mappings = parse_tgds(
        [
            "A1(x) -> exists y . A2(x, y)",
            "A2(x, y) -> B1(x)",
            "B1(x) -> B2(x)",
        ]
    )
    initial = FrozenDatabase(
        schema, {name: frozenset() for name in schema.relation_names()}
    )
    return schema, mappings, initial


def chain_federation(tmp_path, **kwargs):
    schema, mappings, initial = chain_pieces()
    kwargs.setdefault("workdir", str(tmp_path))
    kwargs.setdefault("telemetry_interval", 0.1)
    return ProcessFederation(
        schema,
        initial,
        mappings,
        ownership={"a": ["A1", "A2"], "b": ["B1", "B2"]},
        **kwargs,
    )


def _wait_until(condition, timeout=WAIT_TIMEOUT, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(0.02)
    raise AssertionError("timed out waiting for {}".format(message))


# ----------------------------------------------------------------------
# Satellite: the status reply carries the full registry collect
# ----------------------------------------------------------------------
#: Every family of instruments that must ride the status path.  A missing
#: key here means something fell off the registry — the exact regression
#: the full-collect refactor exists to prevent.
PINNED_METRIC_KEYS = {
    # service counters and derived gauges
    "committed", "failed", "admitted", "submitted", "parks", "resumes",
    "restarts", "abort_rate", "throughput_per_second", "elapsed_seconds",
    "turnaround_p50_seconds", "turnaround_p95_seconds",
    "queue_wait_p50_seconds", "queue_wait_p95_seconds",
    "frontier_wait_p50_seconds", "frontier_wait_p95_seconds",
    # versioned-store gauges
    "store_log_entries", "store_versions", "store_tuples",
    "store_index_entries", "store_compactions",
    # scheduler statistics
    "scheduler_algorithm", "scheduler_steps", "scheduler_aborts",
    "scheduler_updates_executed", "scheduler_wall_seconds",
    # socket-layer counters (the wire_ producer added by this PR)
    "wire_frames_sent", "wire_frames_received", "wire_payloads_received",
    "wire_deliveries_deferred", "wire_answers_dropped",
    # send-side staging window counters
    "wire_payloads_staged", "wire_staged_flushes",
    # SQL-chase evaluator counters (zeros with the path off, so the key set
    # is identical with and without REPRO_SQL_CHASE — the silent-fallback
    # counter must show in repro-top either way)
    "sql_chase_enabled", "sql_chase_evaluations",
    "sql_chase_statements_rendered", "sql_chase_statement_cache_hits",
    "sql_chase_python_fallbacks",
}

#: The status-shaped top-level keys metrics() must keep bit-compatible.
PINNED_STATUS_KEYS = {
    "peer", "quiescent", "halted", "outbox", "staged", "queued", "retry",
    "held", "sent", "received", "payloads_received", "open_questions",
    "committed", "metrics", "deliveries_deferred", "answers_dropped",
    "firings_emitted", "retractions_emitted", "notices_emitted",
    "envelopes_coalesced", "activity_seq",
}


def test_status_reply_carries_the_full_metrics_registry(tmp_path):
    with running(chain_federation(tmp_path)) as federation:
        ticket = federation.submit("a", InsertOperation(make_tuple("A1", "v1")))
        federation.drain(timeout=DRAIN_TIMEOUT)
        assert ticket.is_done
        merged = federation.metrics()
        for name in ("a", "b"):
            view = merged[name]
            missing = PINNED_STATUS_KEYS - set(view)
            assert not missing, "peer {} status lost keys {}".format(
                name, sorted(missing)
            )
            lost = PINNED_METRIC_KEYS - set(view["metrics"])
            assert not lost, "peer {} registry lost keys {}".format(
                name, sorted(lost)
            )
        assert merged["a"]["metrics"]["committed"] >= 1
        # Wire counters agree with the status-reply top level.
        assert (
            merged["a"]["metrics"]["wire_payloads_received"]
            == merged["a"]["payloads_received"]
        )


# ----------------------------------------------------------------------
# Satellite: metrics() is heartbeat-fresh between drains
# ----------------------------------------------------------------------
def test_metrics_are_heartbeat_fresh_without_a_drain(tmp_path):
    with running(chain_federation(tmp_path)) as federation:
        ticket = federation.submit("a", InsertOperation(make_tuple("A1", "v1")))

        def fresh():
            federation.poll(0.05)
            merged = federation.metrics()
            return (
                merged.get("a", {}).get("committed", 0) >= 1
                and merged.get("b", {}).get("committed", 0) >= 1
            )

        # Never calls drain(): only unsolicited heartbeats can deliver this.
        _wait_until(fresh, message="heartbeat-fresh commit counters")
        assert ticket.status.value == "committed"
        liveness = federation.liveness()
        assert liveness["a"]["state"] == LIVE
        assert liveness["b"]["state"] == LIVE
        assert liveness["a"]["seq"] >= 1
        federation.drain(timeout=DRAIN_TIMEOUT)


# ----------------------------------------------------------------------
# The liveness watchdog
# ----------------------------------------------------------------------
def test_watchdog_flags_a_stopped_peer_and_recovers(tmp_path):
    with running(chain_federation(tmp_path)) as federation:
        _wait_until(
            lambda: (federation.poll(0.05) or True)
            and federation.liveness()["b"]["state"] == LIVE,
            message="first heartbeat from b",
        )
        victim = federation._handles["b"].process.pid
        os.kill(victim, signal.SIGSTOP)
        try:
            # Heartbeats stop; the watchdog escalates on age alone (the
            # control channel stays open — this is not the EOF path).
            _wait_until(
                lambda: (federation.poll(0.05) or True)
                and federation.liveness()["b"]["state"] in (STALLED, DEAD),
                message="watchdog stall verdict",
            )
            _wait_until(
                lambda: (federation.poll(0.05) or True)
                and federation.liveness()["b"]["state"] == DEAD,
                message="watchdog dead verdict",
            )
            assert federation.liveness()["a"]["state"] == LIVE
        finally:
            os.kill(victim, signal.SIGCONT)
        # Age-based death is not sticky: fresh heartbeats revive the peer.
        _wait_until(
            lambda: (federation.poll(0.05) or True)
            and federation.liveness()["b"]["state"] == LIVE,
            message="recovery after SIGCONT",
        )
        federation.drain(timeout=DRAIN_TIMEOUT)


# ----------------------------------------------------------------------
# Satellite: drain leaves a latency decomposition
# ----------------------------------------------------------------------
def test_drain_records_its_latency_decomposition(tmp_path):
    with running(chain_federation(tmp_path)) as federation:
        federation.submit("a", InsertOperation(make_tuple("A1", "v1")))
        # Explicit mode: this test pins each protocol's decomposition, so it
        # must not float with the REPRO_DRAIN default (CI runs the whole
        # suite under REPRO_DRAIN=poll as the differential oracle).
        rounds = federation.drain(timeout=DRAIN_TIMEOUT, mode="watermark")
        record = federation.last_drain
        assert record is not None
        # The watermark protocol needs at most one seeding round plus the
        # single confirming round; with went-idle pushes seeding the views
        # it is usually exactly one.
        assert record["rounds"] == rounds >= 1
        assert rounds <= 4  # never the poll barrier's paced cadence
        assert record["settle_reason"] == "watermark-idle"
        assert record["mode"] == "watermark"
        assert record["time_to_idle_seconds"] >= 0.0
        assert len(record["round_seconds"]) == rounds
        assert record["seconds"] >= sum(record["round_seconds"]) * 0.5
        assert federation.timeline.drains[-1] is record
        assert federation.timeline.time_to_idle_series() == [
            record["time_to_idle_seconds"]
        ]
        # The poll-mode oracle still settles the same federation and leaves
        # its own decomposition (two consecutive identical fingerprints).
        poll_rounds = federation.drain(timeout=DRAIN_TIMEOUT, mode="poll")
        poll_record = federation.last_drain
        assert poll_record["rounds"] == poll_rounds >= 2
        assert poll_record["settle_reason"] == "two-round-fingerprint"
        assert poll_record["mode"] == "poll"
        assert "time_to_idle_seconds" not in poll_record
        # The spool carries both (what repro-top's footer renders).
        with open(federation._spool_path) as handle:
            assert sum('"rec": "drain"' in line for line in handle) >= 2


# ----------------------------------------------------------------------
# Satellite: drain settle state resets between calls (peer-lost sandwich)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["watermark", "poll"])
def test_drain_twice_around_a_mid_drain_freeze(tmp_path, mode):
    """A drain that dies on a lost peer must not poison the next drain.

    SIGSTOP freezes b so the drain's status round times out (the
    coordination failure records ``peer-lost``); after SIGCONT the thawed b
    answers the *stale* round, and the second drain must settle cleanly —
    the stale reply can neither satisfy nor corrupt the fresh rounds.
    """
    with running(chain_federation(tmp_path)) as federation:
        ticket = federation.submit("a", InsertOperation(make_tuple("A1", "v1")))
        federation.drain(timeout=DRAIN_TIMEOUT, mode=mode)
        assert ticket.is_done
        victim = federation._handles["b"].process.pid
        os.kill(victim, signal.SIGSTOP)
        try:
            with pytest.raises(Exception) as failure:
                federation.drain(timeout=3.0, mode=mode)
            assert "timed out waiting" in str(failure.value)
            assert federation.last_drain["settle_reason"] == "peer-lost"
            assert federation.last_drain["mode"] == mode
        finally:
            os.kill(victim, signal.SIGCONT)
        rounds = federation.drain(timeout=DRAIN_TIMEOUT, mode=mode)
        assert rounds >= 1
        record = federation.last_drain
        assert record["settle_reason"] in (
            "watermark-idle", "two-round-fingerprint"
        )
        assert record["mode"] == mode


# ----------------------------------------------------------------------
# Satellite: heartbeats between status rounds never double-count deltas
# ----------------------------------------------------------------------
def test_interleaved_heartbeats_and_status_rounds_never_double_count():
    """Seeded fuzz over the delta/absolute interleaving.

    Heartbeats carry metrics as deltas against the previous *heartbeat*
    (the peer does not reset its delta base when it answers a status
    round), status replies carry absolutes.  Whatever the interleaving —
    in particular an unsolicited heartbeat landing between two fingerprint
    rounds — the merged view must track the peer's true counters exactly:
    applying a heartbeat delta on top of a status absolute would
    double-count the interval.
    """
    import random

    from repro.obs.timeline import TelemetryTimeline

    rng = random.Random(0xD841)
    for trial in range(40):
        timeline = TelemetryTimeline(interval=0.1)
        timeline.register_peer("p")
        truth = {"committed": 0, "scheduler_steps": 0, "wire_frames_sent": 0}
        heartbeat_base = dict(truth)
        seq = 0
        wall = 1000.0
        for event in range(rng.randint(3, 25)):
            wall += rng.random()
            for key in truth:
                truth[key] += rng.randint(0, 7)
            if rng.random() < 0.5:
                seq += 1
                delta = {
                    key: truth[key] - heartbeat_base[key] for key in truth
                }
                heartbeat_base = dict(truth)
                timeline.observe(
                    "p",
                    {
                        "t": "telemetry",
                        "peer": "p",
                        "seq": seq,
                        "committed": truth["committed"],
                        "metrics": delta,
                        "metrics_delta": True,
                    },
                    kind="telemetry",
                    now=wall,
                )
            else:
                timeline.observe(
                    "p",
                    {
                        "t": "status-reply",
                        "round": event,
                        "peer": "p",
                        "committed": truth["committed"],
                        "metrics": dict(truth),
                    },
                    kind="status",
                    now=wall,
                )
            view = timeline.latest("p")
            for key, expected in truth.items():
                assert view["metrics"][key] == expected, (
                    "trial {} event {}: {} drifted to {} (truth {})".format(
                        trial, event, key, view["metrics"][key], expected
                    )
                )


# ----------------------------------------------------------------------
# The chaos-visibility acceptance differential: kill -9 mid-workload
# ----------------------------------------------------------------------
def test_kill9_is_visible_and_flight_dump_closes_the_story(
    tmp_path, monkeypatch, capsys
):
    monkeypatch.setenv("REPRO_TRACE", "1")
    # Pinned explicitly so an ambient REPRO_FLIGHT_DIR (the CI smoke sets
    # one for the artifact upload) cannot redirect this test's dumps.
    flight_dir = str(tmp_path / "flight")
    with running(chain_federation(
        tmp_path, telemetry_interval=0.1, flight_dir=flight_dir
    )) as federation:
        assert federation._flight_dir == flight_dir
        tickets = [
            federation.submit(
                "a", InsertOperation(make_tuple("A1", "v{}".format(index)))
            )
            for index in range(4)
        ]

        # Let the cascade reach b and let b's next heartbeat flush its
        # flight ring (the sync runs before the frame is sent, so once the
        # coordinator has seen b commit, b's spans are on disk).
        def b_committed():
            federation.poll(0.05)
            return federation.metrics().get("b", {}).get("committed", 0) >= 1

        _wait_until(b_committed, message="cascade committed at b")

        victim_pid = federation._handles["b"].process.pid
        os.kill(victim_pid, signal.SIGKILL)

        # Visibility: the watchdog must report b dead — via control-channel
        # EOF, which lands well within two heartbeat intervals.
        _wait_until(
            lambda: (federation.poll(0.05) or True)
            and federation.liveness()["b"]["state"] == DEAD,
            message="watchdog death verdict after SIGKILL",
        )
        assert federation.liveness()["b"]["reason"].startswith("eof")

        # The victim's flight segments survived the kill (flushed at its
        # last heartbeat — SIGKILL leaves no dump marker, only the ring).
        victim_files = [
            path for path in flight_paths(flight_dir)
            if os.path.basename(path).startswith("flight-b-")
        ]
        assert victim_files, "no flight segments for the killed peer"
        victim_spans = load_flight_spans(victim_files)
        assert victim_spans, "flight segments carry no span records"
        assert any(span.peer == "b" for span in victim_spans)

        # Fold the survivors' exports and the postmortem spans together:
        # the causal chain of b's remotely-absorbed work must cross both
        # peers even though b never exported a trace.
        export_paths = federation.export_traces()
        merged = merge_spans(load_spans(export_paths), victim_spans)
        analysis = TraceAnalysis(merged)
        chains = analysis.cross_peer_chains()
        assert chains, "no cross-peer chain reconstructed from the wreck"
        peers_seen = set()
        for chain in chains:
            peers_seen.update(span.peer for span in chain if span.peer)
        assert {"a", "b"} <= peers_seen

        # And the CLI folds the same wreckage without error.
        assert trace_cli.main(list(export_paths) + ["--flight", flight_dir]) == 0
        assert "spans:" in capsys.readouterr().out

        # The coordinator itself stayed serviceable: a's tickets finished.
        assert all(
            ticket.is_done for ticket in tickets if ticket.target == "a"
        )
