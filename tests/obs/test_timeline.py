"""Telemetry timeline unit tests: delta merge, watchdog, drains, spooling."""

from __future__ import annotations

import json

from repro.obs.timeline import DEAD, LIVE, STALLED, UNKNOWN, TelemetryTimeline


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


def _timeline(interval=1.0):
    clock = FakeClock()
    timeline = TelemetryTimeline(
        interval=interval, stalled_after=1.5, dead_after=2.0, clock=clock
    )
    timeline.register_peer("a")
    return timeline, clock


def _hb(seq, metrics, **extra):
    body = {"t": "telemetry", "seq": seq, "metrics": metrics,
            "metrics_delta": True, "committed": metrics.get("committed", 0)}
    body.update(extra)
    return body


def test_deltas_accumulate_into_absolutes():
    timeline, clock = _timeline()
    timeline.observe("a", _hb(1, {"committed": 3, "algo": "fifo"}))
    clock.now += 1
    timeline.observe("a", _hb(2, {"committed": 2, "algo": "fifo"}))
    view = timeline.latest("a")
    assert view["metrics"]["committed"] == 5
    assert view["metrics"]["algo"] == "fifo"  # non-numeric passes through
    assert timeline.peers["a"].seq == 2


def test_status_absolutes_do_not_poison_the_delta_base():
    # The peer's delta base is its previous *heartbeat*; a status reply's
    # absolute metrics refresh the view but must not shift accumulation.
    timeline, clock = _timeline()
    timeline.observe("a", _hb(1, {"committed": 3}))
    clock.now += 0.5
    timeline.observe(
        "a",
        {"t": "status-reply", "metrics": {"committed": 4}, "committed": 4},
        kind="status",
    )
    assert timeline.latest("a")["metrics"]["committed"] == 4
    clock.now += 0.5
    # Peer has committed 5 total now; its delta vs the last heartbeat is 2.
    timeline.observe("a", _hb(2, {"committed": 2}))
    assert timeline.latest("a")["metrics"]["committed"] == 5


def test_watchdog_escalates_with_heartbeat_age():
    timeline, clock = _timeline(interval=1.0)
    assert timeline.state("a") == UNKNOWN
    timeline.observe("a", _hb(1, {}))
    assert timeline.state("a") == LIVE
    clock.now += 1.6  # past stalled_after * interval
    assert timeline.state("a") == STALLED
    clock.now += 0.5  # past dead_after * interval
    assert timeline.state("a") == DEAD
    timeline.observe("a", _hb(2, {}))
    assert timeline.state("a") == LIVE  # a fresh heartbeat revives age-death


def test_mark_dead_is_sticky_until_revived():
    timeline, clock = _timeline()
    timeline.observe("a", _hb(1, {}))
    timeline.mark_dead("a", "eof(exit=-9)")
    assert timeline.state("a") == DEAD
    timeline.observe("a", _hb(2, {}))  # a late frame cannot resurrect it
    assert timeline.state("a") == DEAD
    assert timeline.liveness()["a"]["reason"] == "eof(exit=-9)"
    timeline.revive("a")
    assert timeline.state("a") == UNKNOWN  # fresh stream, nothing heard yet
    timeline.observe("a", _hb(1, {}))
    assert timeline.state("a") == LIVE


def test_interval_zero_disables_age_checks():
    timeline, clock = _timeline(interval=0.0)
    timeline.observe("a", _hb(1, {}))
    clock.now += 10_000
    assert timeline.state("a") == LIVE


def test_committed_rate_from_history():
    timeline, clock = _timeline()
    timeline.observe("a", _hb(1, {"committed": 0}, committed=0))
    clock.now += 2.0
    timeline.observe("a", _hb(2, {"committed": 10}, committed=10))
    assert timeline.committed_rate("a") == 5.0


def test_drain_records_accumulate():
    timeline, _ = _timeline()
    timeline.record_drain({"rounds": 3, "settle_reason": "two-round-fingerprint"})
    assert timeline.drains[-1]["rounds"] == 3


def test_spool_round_trip(tmp_path):
    path = str(tmp_path / "telemetry.jsonl")
    records = [
        {"rec": "meta", "interval": 0.25, "stalled_after": 1.5,
         "dead_after": 2.0, "peers": ["a", "b"], "wall": 100.0},
        {"rec": "telemetry", "peer": "a", "kind": "telemetry", "wall": 100.1,
         "body": _hb(1, {"committed": 2})},
        {"rec": "telemetry", "peer": "a", "kind": "telemetry", "wall": 100.4,
         "body": _hb(2, {"committed": 3})},
        {"rec": "liveness", "peer": "b", "state": "dead",
         "reason": "eof(exit=-9)", "age": 1.0, "wall": 100.5},
        {"rec": "drain", "wall": 100.6,
         "drain": {"rounds": 2, "settle_reason": "two-round-fingerprint"}},
    ]
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    timeline = TelemetryTimeline.from_spool(path)
    assert timeline.interval == 0.25
    assert set(timeline.peers) == {"a", "b"}
    assert timeline.latest("a")["metrics"]["committed"] == 5
    assert timeline.peers["a"].seq == 2
    assert timeline.state("b") == DEAD
    assert timeline.drains[-1]["rounds"] == 2
