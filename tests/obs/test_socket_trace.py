"""Causal tracing across a *real* socket hop between peer processes.

The in-process federation already proves cross-peer causal closure
(``test_trace_propagation``); this file proves the same properties when the
trace context rides the ``tr`` field of codec envelopes between OS
processes and the spans land in per-process JSONL exports:

1. **Propagation**: with ``REPRO_TRACE=1`` in the coordinator's environment
   (the same gate `default_tracer` honours), every peer process records
   prefixed spans, the merged export contains at least one causal chain
   crossing two distinct peers, and every remotely-continued update span
   walks its parent links back to exactly one originating *user* root.
2. **Heisenberg-freedom**: the traced federation drains to a state
   hom-equivalent to the untraced federation and to the single-repository
   reference chase — instrumenting the processes must not change what they
   converge to.
"""

from __future__ import annotations

from repro.core.oracle import AlwaysExpandOracle
from repro.federation import (
    ProcessFederation,
    databases_equivalent,
    reference_chase,
)
from repro.obs import load_spans
from repro.obs.analysis import TraceAnalysis
from repro.workload.federated_loop import expanding_answer
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)

DRAIN_TIMEOUT = 120.0


def _scenario():
    return generate_federation_environment(FederationScenarioConfig(
        num_peers=3,
        cross_mappings=6,
        remote_insert_fraction=0.4,
        seed=3,
    ))


def _run_sockets(environment, workdir, export):
    """Drain the scenario over real processes; return (snapshot, paths)."""
    federation = ProcessFederation(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        workdir=str(workdir),
    )
    try:
        tickets = []
        for peer in sorted(environment.operations):
            for operation in environment.operations[peer]:
                tickets.append(federation.submit(peer, operation))
        federation.drain(answer_strategy=expanding_answer, timeout=DRAIN_TIMEOUT)
        assert all(ticket.is_done for ticket in tickets)
        snapshot = federation.global_snapshot()
        paths = federation.export_traces() if export else []
    finally:
        federation.close()
        federation.assert_reaped()
    return snapshot, paths


def test_traces_cross_the_socket_hop_and_do_not_disturb(tmp_path, monkeypatch):
    environment = _scenario()

    # Traced run: ProcessFederation's trace default reads REPRO_TRACE, the
    # same environment gate the rest of the observability layer uses.
    monkeypatch.setenv("REPRO_TRACE", "1")
    traced_snapshot, paths = _run_sockets(
        environment, tmp_path / "traced", export=True
    )
    assert len(paths) == 3  # one JSONL export per peer process

    spans = load_spans(paths)
    assert spans, "traced processes exported no spans"
    # Per-process tracer prefixes: merged ids must not collide, and every
    # peer process must have contributed spans of its own.
    assert len({span.span_id for span in spans}) == len(spans)
    prefixes = {span.span_id.split(".", 1)[0] for span in spans}
    assert prefixes == set(environment.config.peer_names())

    analysis = TraceAnalysis(spans)
    chains = analysis.cross_peer_chains()
    assert chains, "no causal chain crossed a peer process boundary"
    for chain in chains:
        root = chain[0]
        assert root.parent_id is None
        assert root.name == "update" and root.attrs.get("kind") == "user"
        roots = [
            span
            for span in analysis.traces[root.trace_id]
            if span.parent_id is None
        ]
        assert len(roots) == 1, "trace grew a second root mid-exchange"
    # The hop itself is visible: wire spans from the sending process carry
    # the encode cost, wire spans from the receiving process the decode
    # cost, and both sides report the framed payload size.
    encode_halves = [
        span for span in spans
        if span.phase == "wire" and "encode_seconds" in span.attrs
    ]
    decode_halves = [
        span for span in spans
        if span.phase == "wire" and "decode_seconds" in span.attrs
    ]
    assert encode_halves and decode_halves
    assert all(int(span.attrs["bytes"]) > 0 for span in encode_halves)

    # Untraced run of the identical scenario: same convergence result.
    monkeypatch.delenv("REPRO_TRACE")
    untraced_snapshot, no_paths = _run_sockets(
        environment, tmp_path / "untraced", export=False
    )
    assert no_paths == []
    assert databases_equivalent(traced_snapshot, untraced_snapshot)
    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    assert reference.all_terminated
    assert databases_equivalent(traced_snapshot, reference.final)


def test_trace_export_merges_remote_continuations(tmp_path, monkeypatch):
    """Remote continuations parent across files written by other processes."""
    monkeypatch.setenv("REPRO_TRACE", "1")
    environment = _scenario()
    _, paths = _run_sockets(environment, tmp_path, export=True)
    analysis = TraceAnalysis(load_spans(paths))
    continuations = analysis.remote_continuations()
    assert continuations, "scenario produced no cross-process work"
    crossed = 0
    for span in continuations:
        chain = analysis.causal_chain(span)
        assert chain[0].parent_id is None, "continuation chain has no root"
        # The chain was stitched from at least two different processes'
        # export files exactly when the id prefixes differ.
        if len({link.span_id.split(".", 1)[0] for link in chain}) >= 2:
            crossed += 1
    assert crossed, "no continuation chain stitched across export files"
