"""Pins for the shared stats helpers (``repro.obs.stats``).

``percentile`` must use the explicit ceil nearest-rank rule: the old
``int(round(...))`` implementation used banker's rounding, which on small
windows picked the wrong element (e.g. p50 of four samples rounded
``0.5 * 4 = 2.0`` to rank 2 only by accident of tie-to-even — p50 of
``[1..8]`` rounded ``4.0`` "correctly" but p95 of twenty samples rounded
``19.0`` down where nearest-rank demands ceil).  These tests pin the exact
small-window behaviour so the bug cannot regress.
"""

from __future__ import annotations

import pytest

from repro.obs.stats import mean, percentile

# The service and workload layers must keep re-exporting the shared
# implementations (call sites import from either).
from repro.service.metrics import mean as service_mean
from repro.service.metrics import percentile as service_percentile
from repro.workload.metrics import mean as workload_mean


def test_reexports_are_the_shared_implementations():
    assert service_mean is mean
    assert service_percentile is percentile
    assert workload_mean is mean


def test_mean_empty_is_zero():
    assert mean([]) == 0.0


def test_mean_pins():
    assert mean([4.0]) == 4.0
    assert mean([1.0, 2.0, 3.0, 4.0]) == 2.5


def test_percentile_empty_is_zero():
    assert percentile([], 0.5) == 0.0


def test_percentile_singleton():
    assert percentile([7.5], 0.5) == 7.5
    assert percentile([7.5], 0.95) == 7.5


def test_percentile_bounds():
    values = [5.0, 1.0, 3.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, -1.0) == 1.0
    assert percentile(values, 1.0) == 5.0
    assert percentile(values, 2.0) == 5.0


def test_percentile_small_window_nearest_rank():
    # ceil(0.5 * 4) = 2 → second smallest.
    assert percentile([4.0, 1.0, 3.0, 2.0], 0.5) == 2.0
    # ceil(0.5 * 8) = 4 → fourth smallest.
    assert percentile([float(v) for v in range(1, 9)], 0.5) == 4.0
    # ceil(0.95 * 20) = 19 → nineteenth smallest.  ``int(round(19.0))`` also
    # gives 19, but ``int(round(0.95 * 10)) = int(round(9.5)) = 10`` (banker's
    # tie-to-even saved it) while ``int(round(0.5 * 5)) = 2`` disagreed with
    # ceil's 3 — the ceil rule is pinned across all of these.
    assert percentile([float(v) for v in range(1, 21)], 0.95) == 19.0
    # ceil(0.5 * 5) = 3: the case banker's rounding got wrong (round(2.5) = 2).
    assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.5) == 3.0
    # ceil(0.25 * 2) = 1: round(0.5) = 0 would have crashed or clamped.
    assert percentile([10.0, 20.0], 0.25) == 10.0


def test_percentile_does_not_mutate_input():
    values = [3.0, 1.0, 2.0]
    percentile(values, 0.5)
    assert values == [3.0, 1.0, 2.0]


@pytest.mark.parametrize("window", range(1, 12))
def test_percentile_rank_always_in_range(window):
    values = [float(v) for v in range(window)]
    for numerator in range(0, 21):
        result = percentile(values, numerator / 20.0)
        assert result in values
