"""repro-top table shape tests (the --once machine-readable contract)."""

from __future__ import annotations

import json

from repro.obs import top
from repro.obs.timeline import TelemetryTimeline


def _write_spool(path):
    records = [
        {"rec": "meta", "interval": 0.25, "stalled_after": 1.5,
         "dead_after": 2.0, "peers": ["a", "b"], "wall": 100.0},
        {"rec": "telemetry", "peer": "a", "kind": "telemetry", "wall": 100.1,
         "body": {"t": "telemetry", "seq": 1, "committed": 4, "outbox": 1,
                  "retry": 0, "open_questions": 2,
                  "sent": {"b": 7}, "received": {"b": 5},
                  "links": {"b": {"queued": 1}},
                  "metrics": {"committed": 4}, "metrics_delta": True}},
        {"rec": "liveness", "peer": "b", "state": "dead",
         "reason": "eof(exit=-9)", "age": 1.0, "wall": 100.5},
    ]
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def test_render_table_is_tsv_with_the_pinned_columns(tmp_path):
    spool = str(tmp_path / "telemetry.jsonl")
    _write_spool(spool)
    timeline = TelemetryTimeline.from_spool(spool)
    lines = top.render_table(timeline, now=100.2)
    assert lines[0] == "\t".join(top.COLUMNS)
    assert len(lines) == 3  # header + one row per peer
    rows = {line.split("\t")[0]: line.split("\t") for line in lines[1:]}
    assert set(rows) == {"a", "b"}
    for row in rows.values():
        assert len(row) == len(top.COLUMNS)
    a = dict(zip(top.COLUMNS, rows["a"]))
    assert a["state"] == "live"
    assert a["committed"] == "4"
    assert a["parked"] == "2"
    assert a["queue"] == "1"  # outbox + retry
    assert a["sent"] == "7"
    assert a["recv"] == "5"
    b = dict(zip(top.COLUMNS, rows["b"]))
    assert b["state"] == "dead"
    assert b["committed"] == "0"  # never heard from: zeros, not blanks


def test_main_once_prints_the_table(tmp_path, capsys):
    spool = str(tmp_path / "telemetry.jsonl")
    _write_spool(spool)
    assert top.main(["--once", spool]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert out[0] == "\t".join(top.COLUMNS)
    assert len(out) == 3


def test_main_once_accepts_a_workdir(tmp_path, capsys):
    _write_spool(str(tmp_path / "telemetry.jsonl"))
    assert top.main(["--once", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("\t".join(top.COLUMNS))


def test_main_once_missing_spool_fails_cleanly(tmp_path, capsys):
    assert top.main(["--once", str(tmp_path / "nope.jsonl")]) == 1
    err = capsys.readouterr().err
    assert "no telemetry spool" in err
