"""Edge cases of trace analysis: empty files, orphans, absent phases, merges."""

from __future__ import annotations

from repro.obs.analysis import PHASES, TraceAnalysis, merge_spans
from repro.obs.trace import Span, Tracer, load_spans


def _span(sid, tid="t1", parent=None, name="update", phase="", start=0.0,
          end=None, peer="", **attrs):
    return Span(
        trace_id=tid, span_id=sid, parent_id=parent, name=name, phase=phase,
        peer=peer, start=start, end=end, attrs=attrs or {},
    )


def test_empty_trace_file_loads_to_empty_analysis(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with open(path, "w"):
        pass
    spans = load_spans(path)
    assert spans == []
    analysis = TraceAnalysis(spans)
    assert analysis.root_of("t1") is None
    assert analysis.critical_path("t1") == []
    assert analysis.cross_peer_chains() == []
    assert analysis.phase_breakdown() == {phase: 0.0 for phase in PHASES}
    assert analysis.summary()[0] == "spans: 0  traces: 0"


def test_orphaned_span_chain_stops_at_the_missing_parent():
    # The parent was recorded by a peer whose export is missing (e.g. it was
    # killed before flushing): the chain must stop cleanly, not raise.
    orphan = _span("s2", parent="s-missing", start=1.0, end=2.0)
    child = _span("s3", parent="s2", name="commit", start=1.5, end=2.5)
    analysis = TraceAnalysis([orphan, child])
    chain = analysis.causal_chain(child)
    assert [span.span_id for span in chain] == ["s2", "s3"]
    # No parentless span was exported, so the trace has no root.
    assert analysis.root_of("t1") is None
    # critical_path still walks from the latest-finishing span.
    assert [span.span_id for span in analysis.critical_path("t1")] == ["s2", "s3"]


def test_phase_breakdown_reports_zero_for_absent_phases():
    spans = [
        _span("s1", phase="queue", start=0.0, end=0.5),
        _span("s2", phase="chase", start=0.0, end=1.0, tracker_seconds=0.25),
        _span("s3", phase="park", start=0.0, end=None),  # open: not counted
    ]
    breakdown = TraceAnalysis(spans).phase_breakdown()
    assert set(breakdown) == set(PHASES)
    assert breakdown["queue"] == 0.5
    assert breakdown["chase"] == 0.75
    assert breakdown["validate"] == 0.25
    assert breakdown["wire"] == 0.0
    assert breakdown["transit"] == 0.0
    assert breakdown["park"] == 0.0


def test_merge_prefers_closed_records_over_open_captures():
    # A flight dump captured the span open at a heartbeat; the normal export
    # has it closed.  Merged output must carry the closed version, once.
    open_capture = _span("s1", start=1.0, end=None)
    closed = _span("s1", start=1.0, end=2.0)
    merged = merge_spans([open_capture], [closed])
    assert len(merged) == 1
    assert merged[0].end == 2.0
    # Order of sources must not matter for the closed-beats-open rule.
    merged = merge_spans([closed], [open_capture])
    assert len(merged) == 1
    assert merged[0].end == 2.0


def test_merge_deduplicates_identical_records_and_keeps_order():
    tracer = Tracer(prefix="p0.")
    first = tracer.start_span("update", peer="a")
    second = tracer.start_span("chase-step", parent=first, peer="a")
    tracer.end_span(second)
    tracer.end_span(first)
    exported = [Span.from_record(span.to_record()) for span in tracer.spans]
    flight = [Span.from_record(span.to_record()) for span in tracer.spans]
    merged = merge_spans(exported, flight)
    assert [span.span_id for span in merged] == [
        span.span_id for span in tracer.spans
    ]
    # The merged set still reconstructs the causal chain.
    analysis = TraceAnalysis(merged)
    chain = analysis.causal_chain(merged[1])
    assert [span.span_id for span in chain] == [first.span_id, second.span_id]


def test_merge_distinguishes_same_span_id_across_traces():
    # (trace_id, span_id) is the identity — identical span ids in different
    # traces must both survive.
    merged = merge_spans(
        [_span("s1", tid="t1", end=1.0), _span("s1", tid="t2", end=1.0)]
    )
    assert len(merged) == 2
