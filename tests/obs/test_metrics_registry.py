"""The unified metrics registry and its bit-compatible service facade."""

from __future__ import annotations

import pytest

from repro.concurrency.aborts import RunStatistics
from repro.fixtures.genealogy import genealogy_repository
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.metrics import WAIT_SAMPLE_WINDOW, ServiceMetrics
from repro.service.repository import RepositoryService

#: The historical ``ServiceMetrics`` snapshot keys, in the historical order.
SERVICE_BASE_KEYS = [
    "submitted",
    "admitted",
    "committed",
    "failed",
    "parks",
    "resumes",
    "restarts",
    "elapsed_seconds",
    "throughput_per_second",
    "abort_rate",
    "frontier_wait_p50_seconds",
    "frontier_wait_p95_seconds",
    "queue_wait_p50_seconds",
    "queue_wait_p95_seconds",
    "turnaround_p50_seconds",
    "turnaround_p95_seconds",
]

STORE_KEYS = [
    "store_log_entries",
    "store_versions",
    "store_tuples",
    "store_index_entries",
    "store_compactions",
]


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_increments():
    registry = MetricsRegistry()
    counter = registry.counter("hits")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.collect() == {"hits": 5}


def test_gauge_set_and_function():
    registry = MetricsRegistry()
    registry.gauge("level").set(3.5)
    backing = [7]
    registry.gauge("live").set_function(lambda: backing[0])
    assert registry.collect() == {"level": 3.5, "live": 7}
    backing[0] = 9
    assert registry.collect()["live"] == 9


def test_histogram_percentile_keys_and_window():
    registry = MetricsRegistry()
    histogram = registry.histogram("wait", window=4, unit="seconds")
    for value in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]:
        histogram.observe(value)
    data = registry.collect()
    # Window 4 keeps only the most recent four samples: [3, 4, 5, 6].
    assert data["wait_p50_seconds"] == 4.0
    assert data["wait_p95_seconds"] == 6.0


def test_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_producers_collect_after_instruments_and_prefix():
    registry = MetricsRegistry()
    registry.counter("first").inc()
    registry.register_producer(lambda: {"steps": 12}, prefix="scheduler_")
    data = registry.collect()
    assert list(data.keys()) == ["first", "scheduler_steps"]
    assert data["scheduler_steps"] == 12


def test_producer_keys_overwrite_instruments():
    registry = MetricsRegistry()
    registry.gauge("depth").set(1.0)
    registry.register_producer(lambda: {"depth": 2.0})
    assert registry.collect()["depth"] == 2.0


# ----------------------------------------------------------------------
# ServiceMetrics facade compatibility
# ----------------------------------------------------------------------
def test_service_metrics_snapshot_key_layout_is_unchanged():
    metrics = ServiceMetrics(started_at=0.0)
    snapshot = metrics.snapshot(RunStatistics(), now=1.0)
    base = [key for key in snapshot if not key.startswith("scheduler_")]
    assert base == SERVICE_BASE_KEYS
    assert "scheduler_algorithm" in snapshot
    assert "scheduler_steps" in snapshot


def test_service_metrics_counter_attributes_stay_ints():
    metrics = ServiceMetrics(started_at=0.0)
    metrics.record_submit()
    metrics.record_admit(0.1)
    metrics.record_commit(0.2)
    metrics.record_park()
    metrics.record_resume(0.3)
    metrics.record_restart()
    metrics.record_failure()
    for name in ("submitted", "admitted", "committed", "failed", "parks", "resumes", "restarts"):
        value = getattr(metrics, name)
        assert value == 1
        assert isinstance(value, int)


def test_service_metrics_window_is_bounded():
    metrics = ServiceMetrics(started_at=0.0)
    for index in range(WAIT_SAMPLE_WINDOW + 10):
        metrics.frontier_waits.observe(float(index))
    assert len(metrics.frontier_waits.samples) == WAIT_SAMPLE_WINDOW


def test_repository_snapshot_includes_store_and_scheduler_once():
    database, mappings = genealogy_repository()
    service = RepositoryService(database.snapshot(), mappings)
    snapshot = service.metrics_snapshot()
    keys = list(snapshot.keys())
    for key in SERVICE_BASE_KEYS + STORE_KEYS + ["scheduler_algorithm"]:
        assert keys.count(key) == 1, key
