"""Tracer unit tests: span identity, parenting, export/load, env gating."""

from __future__ import annotations

import json

import repro.obs.trace as trace_module
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanContext,
    Tracer,
    default_tracer,
    load_spans,
)


def _ticking_clock():
    state = {"now": 0.0}

    def clock():
        state["now"] += 1.0
        return state["now"]

    return clock


def test_deterministic_ids():
    tracer = Tracer(clock=_ticking_clock())
    a = tracer.start_span("update")
    b = tracer.start_span("queue", parent=a)
    c = tracer.start_span("update")
    assert (a.trace_id, a.span_id) == ("t1", "s1")
    assert (b.trace_id, b.span_id) == ("t1", "s2")
    assert b.parent_id == "s1"
    assert (c.trace_id, c.span_id) == ("t2", "s3")


def test_parent_accepts_span_or_context():
    tracer = Tracer(clock=_ticking_clock())
    root = tracer.start_span("update")
    via_span = tracer.start_span("child", parent=root)
    via_context = tracer.start_span("child", parent=root.context)
    assert via_span.trace_id == via_context.trace_id == root.trace_id
    assert via_span.parent_id == via_context.parent_id == root.span_id


def test_end_span_is_idempotent_and_merges_attrs():
    tracer = Tracer(clock=_ticking_clock())
    span = tracer.start_span("update")
    tracer.end_span(span, status="committed")
    first_end = span.end
    tracer.end_span(span, extra=1)
    assert span.end == first_end
    assert span.attrs == {"status": "committed", "extra": 1}


def test_event_is_instant():
    tracer = Tracer(clock=_ticking_clock())
    span = tracer.event("commit", priority=3)
    assert span.start == span.end
    assert span.duration == 0.0
    assert span.attrs == {"priority": 3}


def test_record_span_keeps_caller_interval():
    tracer = Tracer(clock=_ticking_clock())
    span = tracer.record_span("wire", start=10.0, end=12.5, phase="wire", bytes=42)
    assert span.start == 10.0
    assert span.end == 12.5
    assert span.duration == 2.5
    assert span.phase == "wire"


def test_export_load_round_trip(tmp_path):
    tracer = Tracer(clock=_ticking_clock())
    root = tracer.start_span("update", peer="p0", kind="user")
    child = tracer.start_span("chase-step", phase="chase", parent=root, peer="p0")
    tracer.end_span(child, tracker_seconds=0.25)
    tracer.end_span(root, status="committed")
    path = tmp_path / "trace.jsonl"
    assert tracer.export_jsonl(str(path)) == 2
    loaded = load_spans(str(path))
    assert len(loaded) == 2
    for original, restored in zip(tracer.spans, loaded):
        assert restored.to_record() == original.to_record()
    # Every line is valid standalone JSON with the compact keys.
    lines = path.read_text().strip().splitlines()
    record = json.loads(lines[1])
    assert record["tid"] == root.trace_id
    assert record["parent"] == root.span_id
    assert record["phase"] == "chase"


def test_load_spans_accepts_multiple_paths(tmp_path):
    first = Tracer(clock=_ticking_clock())
    first.event("commit")
    second = Tracer(clock=_ticking_clock())
    second.event("abort")
    path_a = tmp_path / "a.jsonl"
    path_b = tmp_path / "b.jsonl"
    first.export_jsonl(str(path_a))
    second.export_jsonl(str(path_b))
    names = [span.name for span in load_spans([str(path_a), str(path_b)])]
    assert names == ["commit", "abort"]


def test_noop_tracer_records_nothing(tmp_path):
    tracer = NoopTracer()
    assert tracer.enabled is False
    assert tracer.start_span("update") is None
    assert tracer.end_span(None) is None
    assert tracer.event("commit") is None
    assert tracer.record_span("wire", 0.0, 1.0) is None
    path = tmp_path / "empty.jsonl"
    assert tracer.export_jsonl(str(path)) == 0
    assert path.read_text() == ""


def test_default_tracer_env_gating(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert default_tracer() is NOOP_TRACER
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setattr(trace_module, "_shared_tracer", None)
    live = default_tracer()
    assert isinstance(live, Tracer)
    # Shared: every layer built while tracing is on records into one list.
    assert default_tracer() is live
    monkeypatch.setenv("REPRO_TRACE", "0")
    assert default_tracer() is NOOP_TRACER


def test_span_context_is_hashable_value_type():
    assert SpanContext("t1", "s1") == SpanContext("t1", "s1")
    assert len({SpanContext("t1", "s1"), SpanContext("t1", "s1")}) == 1


def test_clear_keeps_id_counters_running():
    tracer = Tracer(clock=_ticking_clock())
    tracer.start_span("update")
    tracer.clear()
    assert tracer.spans == []
    span = tracer.start_span("update")
    assert span.span_id == "s2"
    assert span.trace_id == "t2"


def test_from_record_defaults():
    span = Span.from_record({"tid": "t1", "sid": "s1", "name": "update", "start": 0.0})
    assert span.parent_id is None
    assert span.phase == ""
    assert span.peer == ""
    assert span.end is None
    assert span.attrs == {}
