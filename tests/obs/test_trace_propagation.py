"""Cross-peer trace propagation under adversarial transports.

Two properties, asserted over randomized federated runs with delivery delay,
reordering, and a partition that later heals:

1. **Causality**: every span opened for remotely-absorbed work (exchange
   firings, retractions, forwarded updates) walks its parent links back to
   exactly one root span, and that root is an originating *user* operation.
   No orphans, no roots created mid-exchange.
2. **Heisenberg-freedom**: running the identical scenario with tracing on
   and off produces the same convergence result and the same deterministic
   cost panel — instrumenting the run must not change it.
"""

from __future__ import annotations

import pytest

from repro.core.oracle import AlwaysExpandOracle
from repro.federation import FederatedNetwork, Transport
from repro.obs.analysis import TraceAnalysis
from repro.obs.trace import Tracer
from repro.workload.federated_loop import (
    FederatedClientSpec,
    FederatedClosedLoopDriver,
    expanding_answer,
)
from repro.federation.convergence import check_convergence, reference_chase
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)

REMOTE_EXCHANGE_OPS = ("RemoteFiringOperation", "RemoteRetractionOperation")


def _run(environment, transport, tracer=None, answer_delay=1):
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=transport,
        tracer=tracer,
    )
    specs = [
        FederatedClientSpec(peer=peer, name="client@{}".format(peer), operations=list(ops))
        for peer, ops in environment.operations.items()
    ]
    driver = FederatedClosedLoopDriver(
        network, specs, answer_delay=answer_delay, answer_strategy=expanding_answer
    )
    report = driver.run(max_rounds=5_000)
    assert report.all_done and report.drained
    return network


def _reference(environment):
    reference = reference_chase(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.all_operations(),
        oracle=AlwaysExpandOracle(),
    )
    assert reference.all_terminated
    return reference


def _cost_panel(network):
    """The deterministic slice of the metrics snapshot.

    Wall-clock keys vary run to run regardless of tracing; wire-byte keys
    legitimately grow under tracing (envelopes carry the ``tr`` context).
    Every remaining counter must be identical traced vs untraced.
    """
    excluded = ("seconds", "bytes", "throughput", "abort_rate")
    return {
        key: value
        for key, value in network.metrics().items()
        if not any(marker in key for marker in excluded)
    }


def _assert_causal_closure(analysis):
    """Every remote continuation chains back to exactly one user root."""
    continuations = analysis.remote_continuations()
    assert continuations, "scenario produced no cross-peer work"
    exchange_continuations = 0
    for span in continuations:
        chain = analysis.causal_chain(span)
        root = chain[0]
        assert root.parent_id is None, "chain did not reach a root"
        assert root.name == "update"
        assert root.attrs.get("kind") == "user", (
            "remote span {} roots in {!r}, not a user operation".format(
                span.span_id, root.attrs
            )
        )
        # Exactly one root: the walk is a single path, and the trace has a
        # single parentless span.
        roots = [s for s in analysis.traces[span.trace_id] if s.parent_id is None]
        assert len(roots) == 1
        if span.attrs.get("op_type") in REMOTE_EXCHANGE_OPS:
            exchange_continuations += 1
    assert exchange_continuations > 0, "no firing/retraction crossed a peer boundary"


@pytest.mark.parametrize("seed,delay,reorder", [(0, 1, None), (1, 2, 7), (2, 2, 11)])
def test_remote_spans_root_in_user_operations(seed, delay, reorder):
    config = FederationScenarioConfig(
        num_peers=3,
        cross_mappings=6,
        remote_insert_fraction=0.3,
        seed=seed,
    )
    environment = generate_federation_environment(config)
    tracer = Tracer()
    network = _run(
        environment,
        Transport(delay=delay, reorder_seed=reorder, wire=True),
        tracer=tracer,
    )
    _assert_causal_closure(TraceAnalysis(tracer.spans))
    assert check_convergence(network, _reference(environment)).equivalent


def test_partition_heal_preserves_causal_chains():
    config = FederationScenarioConfig(
        num_peers=3, cross_mappings=6, remote_insert_fraction=0.5, seed=4
    )
    environment = generate_federation_environment(config)
    tracer = Tracer()
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=1, wire=True),
        tracer=tracer,
    )
    peers = environment.config.peer_names()
    network.partition(peers[0], peers[1])
    network.partition(peers[1], peers[2])
    for peer, operations in environment.operations.items():
        for operation in operations:
            network.submit(peer, operation)
    for _ in range(40):
        network.pump()
        for peer_name in network.peer_names():
            for question in network.inbox(peer_name):
                network.answer(peer_name, question, expanding_answer(question))
    assert network.transport.in_flight > 0
    network.heal(peers[0], peers[1])
    network.heal(peers[1], peers[2])
    network.run_until_quiescent(answer_strategy=expanding_answer, max_rounds=5_000)
    analysis = TraceAnalysis(tracer.spans)
    _assert_causal_closure(analysis)
    # Envelopes held behind the partition still carried their contexts: at
    # least one reconstructed chain crosses peers.
    assert analysis.cross_peer_chains()
    assert check_convergence(network, _reference(environment)).equivalent


@pytest.mark.parametrize("seed", [0, 3])
def test_tracing_does_not_change_the_run(seed):
    config = FederationScenarioConfig(
        num_peers=3,
        cross_mappings=6,
        remote_insert_fraction=0.3,
        seed=seed,
    )
    reference = _reference(generate_federation_environment(config))

    untraced = _run(
        generate_federation_environment(config),
        Transport(delay=1, reorder_seed=seed, wire=True),
        tracer=None,
    )
    traced = _run(
        generate_federation_environment(config),
        Transport(delay=1, reorder_seed=seed, wire=True),
        tracer=Tracer(),
    )
    assert check_convergence(untraced, reference).equivalent
    assert check_convergence(traced, reference).equivalent
    assert _cost_panel(untraced) == _cost_panel(traced)
    # Tracing did record something — the differential is not vacuous.
    assert traced.tracer.spans
