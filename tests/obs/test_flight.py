"""Flight recorder unit tests: ring bounds, rotation, dumps, loading back."""

from __future__ import annotations

import json
import os

from repro.obs.flight import (
    FlightRecorder,
    flight_paths,
    load_flight_records,
    load_flight_spans,
)
from repro.obs.trace import Tracer


def _clock():
    return 1000.0


def test_disabled_recorder_is_a_cheap_noop(tmp_path):
    recorder = FlightRecorder(None, "p0")
    assert not recorder.enabled
    recorder.record("delivery", payload="remote-update")
    recorder.record_span({"tid": "t1", "sid": "s1", "name": "x", "start": 0.0})
    assert recorder.flush() == 0
    assert recorder.dump("sigterm") == []
    assert recorder.records() == []


def test_ring_is_bounded_in_memory(tmp_path):
    recorder = FlightRecorder(
        str(tmp_path), "p0", capacity=8, segment_records=1000, clock=_clock
    )
    for index in range(20):
        recorder.record("event", n=index)
    window = recorder.records()
    assert len(window) == 8
    assert [entry["n"] for entry in window] == list(range(12, 20))


def test_flush_and_rotation_bound_disk_and_keep_recent_window(tmp_path):
    recorder = FlightRecorder(
        str(tmp_path), "p0", capacity=4, segment_records=4, clock=_clock
    )
    for index in range(11):
        recorder.record("event", n=index)
    recorder.flush()
    paths = flight_paths(str(tmp_path))
    assert len(paths) == 2
    # Disk never holds more than two segments' worth of records...
    total_lines = sum(len(open(path).readlines()) for path in paths)
    assert total_lines <= 8
    # ...and the loader returns the surviving window in seq order.
    records = load_flight_records(str(tmp_path))
    numbers = [entry["n"] for entry in records if entry["kind"] == "event"]
    assert numbers == sorted(numbers)
    assert numbers[-1] == 10  # the newest record always survives rotation


def test_dump_records_first_reason_and_flushes_tail(tmp_path):
    recorder = FlightRecorder(str(tmp_path), "p0", capacity=16, clock=_clock)
    recorder.record("delivery", payload="remote-update")
    recorder.dump("sigterm")
    recorder.dump("shutdown")  # second reason must not overwrite the first
    records = load_flight_records(str(tmp_path))
    dumps = [entry for entry in records if entry["kind"] == "dump"]
    assert [entry["reason"] for entry in dumps] == ["sigterm"]
    assert recorder.dumped


def test_span_records_round_trip_through_a_dump(tmp_path):
    tracer = Tracer(prefix="p0.")
    span = tracer.start_span("update", phase="", peer="p0", kind="user")
    tracer.end_span(span)
    recorder = FlightRecorder(str(tmp_path), "p0", capacity=16, clock=_clock)
    recorder.record_span(span.to_record())
    recorder.dump("orphan-exit")
    loaded = load_flight_spans(str(tmp_path))
    assert len(loaded) == 1
    assert loaded[0].span_id == span.span_id
    assert loaded[0].trace_id == span.trace_id
    assert loaded[0].end is not None


def test_loader_groups_multiple_recorders_by_file_prefix(tmp_path):
    # Two "processes" sharing one postmortem directory: loading must not
    # interleave their independent seq counters.
    a = FlightRecorder(str(tmp_path), "a", capacity=8, clock=_clock)
    b = FlightRecorder(str(tmp_path), "b", capacity=8, clock=_clock)
    a.record("event", who="a", n=1)
    b.record("event", who="b", n=1)
    a.record("event", who="a", n=2)
    a.dump("shutdown")
    b.dump("shutdown")
    records = [
        entry for entry in load_flight_records(str(tmp_path))
        if entry["kind"] == "event"
    ]
    # Same-recorder records stay in order regardless of the other stream.
    a_ns = [entry["n"] for entry in records if entry["who"] == "a"]
    assert a_ns == [1, 2]


def test_flight_files_are_valid_jsonl(tmp_path):
    recorder = FlightRecorder(str(tmp_path), "p0", capacity=8, clock=_clock)
    recorder.record("heartbeat", seq=1)
    recorder.dump("shutdown")
    for path in flight_paths(str(tmp_path)):
        with open(path) as handle:
            for line in handle:
                if line.strip():
                    entry = json.loads(line)
                    assert entry["rec"] in ("event", "span")
                    assert "seq" in entry
