"""Compare a fresh BENCH_scaling.json against the committed one.

Used by the non-blocking ``benchmarks`` CI job: after regenerating the
measurements it annotates the run with GitHub ``::warning`` lines when a
tracked throughput metric fell below ``THRESHOLD`` times its committed
value.  Purely advisory — benches on shared runners are noisy, so a warning
is a prompt to look, not a failure.

Usage: ``python compare_bench.py <recorded.json> <fresh.json>``
"""

from __future__ import annotations

import json
import sys

#: A fresh value below ``THRESHOLD * recorded`` is flagged.
THRESHOLD = 0.8

#: ``(label, path)`` pairs compared between the two files; a path is a key
#: sequence into the JSON document.  Higher is better for all of them.
TRACKED = (
    ("tracker_speedup", ("tracker_speedup",)),
    ("federation.committed_per_second", ("federation", "committed_per_second")),
    ("batched.committed_per_second", ("batched", "committed_per_second")),
    (
        "batched.wire_committed_per_second",
        ("batched", "wire_committed_per_second"),
    ),
    (
        "federation_open_loop.committed_per_second",
        ("federation_open_loop", "committed_per_second"),
    ),
    (
        "federation_sockets.committed_per_second",
        ("federation_sockets", "committed_per_second"),
    ),
    (
        "federation_sockets.payloads_per_frame",
        ("federation_sockets", "payloads_per_frame"),
    ),
    ("telemetry_overhead.on_vs_off", ("telemetry_overhead", "on_vs_off")),
    ("drain_protocol.drain_speedup", ("drain_protocol", "drain_speedup")),
    (
        "drain_protocol.staging_window.committed_per_second",
        ("drain_protocol", "staging_window", "committed_per_second"),
    ),
    ("sql_chase.speedup", ("sql_chase", "speedup")),
    ("sql_chase.bulk_load.speedup", ("sql_chase", "bulk_load", "speedup")),
)


def _lookup(document, path):
    value = document
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value if isinstance(value, (int, float)) else None


def main(argv):
    if len(argv) != 3:
        print("usage: compare_bench.py <recorded.json> <fresh.json>")
        return 2
    try:
        with open(argv[1]) as handle:
            recorded = json.load(handle)
        with open(argv[2]) as handle:
            fresh = json.load(handle)
    except (OSError, ValueError) as error:
        print("::warning::benchmark comparison skipped: {}".format(error))
        return 0
    regressions = 0
    for label, path in TRACKED:
        old = _lookup(recorded, path)
        new = _lookup(fresh, path)
        if old is None or new is None or old <= 0:
            print("{}: no comparable recording (old={}, new={})".format(label, old, new))
            continue
        ratio = new / old
        line = "{}: recorded {:.2f} -> fresh {:.2f} ({:.2f}x)".format(
            label, old, new, ratio
        )
        if ratio < THRESHOLD:
            regressions += 1
            print(
                "::warning title=Benchmark regression::{} — below the "
                "{:.0%} threshold".format(line, THRESHOLD)
            )
        else:
            print(line)
    print(
        "{} tracked metric(s) regressed below {:.0%}".format(regressions, THRESHOLD)
        if regressions
        else "no tracked benchmark metric regressed below {:.0%}".format(THRESHOLD)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
